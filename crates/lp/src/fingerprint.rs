//! Content-addressed fingerprints for LP/ILP problems.
//!
//! The solve pool (`ipet-pool`) caches solved ILPs under a key derived from
//! the *content* of the problem, not from where it came from, so structurally
//! identical ILPs across constraint sets, benchmarks and repeated runs are
//! solved once and replayed. The key must therefore be invariant under the
//! renamings that do not change the problem:
//!
//! * **variable canonicalization** — permuting variable indices (and with
//!   them objective entries, integrality flags and row terms) yields an
//!   α-equivalent problem and must yield the same key;
//! * **row order** — constraint rows form a set, not a sequence;
//! * **coefficient normalization** — repeated terms for one variable are
//!   summed and zero coefficients dropped (constant folding), `-0.0` is
//!   folded to `0.0`, and a row's terms are sorted, so syntactic noise in
//!   how a row was assembled does not split the cache;
//! * **debug names** — `Problem::names` never affects the key.
//!
//! The construction is a Weisfeiler–Leman-style color refinement on the
//! bipartite variable/row incidence graph. Variables start from a color
//! hashing their objective coefficient and integrality; each round hashes
//! every row from its relation, right-hand side and *sorted multiset* of
//! (coefficient, variable-color) pairs, then re-colors every variable from
//! its sorted multiset of (coefficient, row-color) pairs. Sorting multisets
//! makes every round permutation-invariant by construction. The final key
//! hashes the sense, the dimensions and the sorted color multisets.
//!
//! Like every WL scheme this is a *sound index, not a proof of isomorphism*:
//! distinct problems could in principle collide (either as a genuine 128-bit
//! hash collision or as WL-indistinguishable non-isomorphic instances).
//! Cache correctness therefore never rests on the key alone — the pool
//! validates every replay against the actual problem (see `ipet-pool`), and
//! [`same_structure`] provides the exact structural-equality check used to
//! gate verdicts that cannot be re-validated from a witness point.

use crate::model::{Problem, Relation, Sense};

/// A 128-bit content hash of a normalized problem.
///
/// Equal fingerprints are a *cache index* hint: α-equivalent problems always
/// map to the same fingerprint, and different fingerprints always mean
/// different problems, but equal fingerprints alone do not prove
/// equivalence — replays must be validated (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Number of refinement rounds. Two rounds separate everything the solve
/// pipeline generates; a third is cheap insurance for symmetric instances.
const ROUNDS: usize = 3;

/// Deterministic 64-bit mixer (splitmix64 finalizer). The standard library
/// hashers make no cross-version stability promise, and the fingerprint must
/// be stable enough to compare across processes in tests and tooling.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Folds `word` into a running hash.
fn fold(h: u64, word: u64) -> u64 {
    mix(h ^ mix(word))
}

/// Canonical bit pattern of a coefficient: `-0.0` folds to `0.0` so the two
/// encodings of zero hash identically (NaN never reaches here — the solver
/// rejects non-finite models before caching).
fn coeff_bits(c: f64) -> u64 {
    if c == 0.0 {
        0f64.to_bits()
    } else {
        c.to_bits()
    }
}

fn relation_tag(r: Relation) -> u64 {
    match r {
        Relation::Le => 0x1d,
        Relation::Ge => 0x2e,
        Relation::Eq => 0x3f,
    }
}

fn sense_tag(s: Sense) -> u64 {
    match s {
        Sense::Maximize => 0x51,
        Sense::Minimize => 0x62,
    }
}

/// One normalized row: summed, zero-dropped, sorted sparse terms.
struct NormRow {
    /// `(var, coeff_bits)` sorted by variable index.
    terms: Vec<(usize, u64)>,
    relation: Relation,
    rhs_bits: u64,
}

fn normalize_rows(problem: &Problem) -> Vec<NormRow> {
    let n = problem.num_vars();
    problem
        .constraints
        .iter()
        .map(|con| {
            // Sum repeated terms via the dense form (constant folding), then
            // re-sparsify dropping exact zeros.
            let dense = con.dense(n);
            let terms: Vec<(usize, u64)> = dense
                .iter()
                .enumerate()
                .filter(|(_, &c)| c != 0.0)
                .map(|(v, &c)| (v, coeff_bits(c)))
                .collect();
            NormRow { terms, relation: con.relation, rhs_bits: coeff_bits(con.rhs) }
        })
        .collect()
}

/// Computes the content fingerprint of `problem`.
///
/// Invariant under variable permutation, row reordering, repeated/zero
/// terms, and debug names; sensitive to the sense, every effective
/// coefficient, every relation and right-hand side, and integrality flags.
pub fn fingerprint(problem: &Problem) -> Fingerprint {
    let n = problem.num_vars();
    let rows = normalize_rows(problem);

    // Initial variable colors: objective coefficient + integrality.
    let mut var_color: Vec<u64> = (0..n)
        .map(|v| {
            let mut h = 0xa5a5_0001u64;
            h = fold(h, coeff_bits(problem.objective[v]));
            h = fold(h, u64::from(problem.integer[v]));
            h
        })
        .collect();
    let mut row_color: Vec<u64> = vec![0; rows.len()];

    for round in 0..ROUNDS {
        // Rows from variables.
        for (i, row) in rows.iter().enumerate() {
            let mut sig: Vec<u64> = row
                .terms
                .iter()
                .map(|&(v, cb)| fold(fold(0xb6b6_0002, cb), var_color[v]))
                .collect();
            sig.sort_unstable();
            let mut h = fold(0xc7c7_0003, round as u64);
            h = fold(h, relation_tag(row.relation));
            h = fold(h, row.rhs_bits);
            for s in sig {
                h = fold(h, s);
            }
            row_color[i] = h;
        }
        // Variables from rows.
        let mut var_sigs: Vec<Vec<u64>> = vec![Vec::new(); n];
        for (i, row) in rows.iter().enumerate() {
            for &(v, cb) in &row.terms {
                var_sigs[v].push(fold(fold(0xd8d8_0004, cb), row_color[i]));
            }
        }
        for (v, mut sig) in var_sigs.into_iter().enumerate() {
            sig.sort_unstable();
            let mut h = fold(var_color[v], 0xe9e9_0005);
            for s in sig {
                h = fold(h, s);
            }
            var_color[v] = h;
        }
    }

    // Final key: sense, dimensions and the sorted color multisets, digested
    // twice with different salts for a 128-bit key.
    let mut vs = var_color;
    vs.sort_unstable();
    let mut rs = row_color;
    rs.sort_unstable();
    let digest = |salt: u64| {
        let mut h = fold(salt, sense_tag(problem.sense));
        h = fold(h, n as u64);
        h = fold(h, rows.len() as u64);
        for &c in &vs {
            h = fold(h, c);
        }
        for &c in &rs {
            h = fold(h, c);
        }
        h
    };
    let hi = digest(0x0f0f_1111_2222_3333);
    let lo = digest(0x7777_8888_9999_aaaa);
    Fingerprint(((hi as u128) << 64) | lo as u128)
}

/// Content fingerprint of a bundle of *delta rows* relative to a base
/// problem with `num_vars` variables (see `ipet-lp`'s `incremental`
/// module). Together with the base problem's [`fingerprint`] it forms the
/// `(base, delta)` cache key used by the solve pool.
///
/// Deltas are keyed **positionally**: variable indices refer to the base
/// problem's variable order, so two deltas only share a key when they
/// constrain the same base columns the same way. Row order and syntactic
/// term noise (repeats, zeros, `-0.0`) do not affect the key; the empty
/// delta maps to `Fingerprint(0)` so "no delta" is recognizable in logs.
pub fn delta_rows_fingerprint(rows: &[crate::model::Constraint], num_vars: usize) -> Fingerprint {
    if rows.is_empty() {
        return Fingerprint(0);
    }
    let mut row_hashes: Vec<u64> = rows
        .iter()
        .map(|con| {
            let dense = con.dense(num_vars);
            let mut h = fold(0xf1f1_0006, relation_tag(con.relation));
            h = fold(h, coeff_bits(con.rhs));
            for (v, &c) in dense.iter().enumerate() {
                if c != 0.0 {
                    h = fold(fold(h, v as u64), coeff_bits(c));
                }
            }
            h
        })
        .collect();
    row_hashes.sort_unstable();
    let digest = |salt: u64| {
        let mut h = fold(salt, num_vars as u64);
        h = fold(h, rows.len() as u64);
        for &r in &row_hashes {
            h = fold(h, r);
        }
        h
    };
    let hi = digest(0x1357_9bdf_0246_8ace);
    let lo = digest(0xfdb9_7531_eca8_6420);
    Fingerprint(((hi as u128) << 64) | lo as u128)
}

/// Exact structural equality of two problems: same sense, same normalized
/// rows in the same order, same objective and integrality flags — debug
/// names are ignored. This is the strict gate the solve cache uses before
/// replaying verdicts (like `Infeasible`) that a witness point cannot
/// re-validate.
pub fn same_structure(a: &Problem, b: &Problem) -> bool {
    if a.sense != b.sense
        || a.num_vars() != b.num_vars()
        || a.num_constraints() != b.num_constraints()
    {
        return false;
    }
    if a.integer != b.integer {
        return false;
    }
    let bits = |xs: &[f64]| xs.iter().map(|&c| coeff_bits(c)).collect::<Vec<_>>();
    if bits(&a.objective) != bits(&b.objective) {
        return false;
    }
    let ra = normalize_rows(a);
    let rb = normalize_rows(b);
    ra.iter()
        .zip(&rb)
        .all(|(x, y)| x.relation == y.relation && x.rhs_bits == y.rhs_bits && x.terms == y.terms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Constraint, ProblemBuilder, VarId};

    fn toy(sense: Sense) -> Problem {
        let mut b = ProblemBuilder::new(sense);
        let x = b.add_var("x", true);
        let y = b.add_var("y", true);
        b.objective(x, 3.0);
        b.objective(y, 2.0);
        b.constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
        b.constraint(vec![(x, 1.0)], Relation::Le, 2.0);
        b.build()
    }

    #[test]
    fn stable_across_calls_and_name_changes() {
        let p = toy(Sense::Maximize);
        let mut q = toy(Sense::Maximize);
        q.names = vec!["a".into(), "b".into()];
        assert_eq!(fingerprint(&p), fingerprint(&q));
        assert!(same_structure(&p, &q));
    }

    #[test]
    fn sense_and_content_change_the_key() {
        let p = toy(Sense::Maximize);
        assert_ne!(fingerprint(&p), fingerprint(&toy(Sense::Minimize)));

        let mut q = p.clone();
        q.constraints[0].rhs = 5.0;
        assert_ne!(fingerprint(&p), fingerprint(&q));
        assert!(!same_structure(&p, &q));

        let mut q = p.clone();
        q.constraints[1].relation = Relation::Ge;
        assert_ne!(fingerprint(&p), fingerprint(&q));

        let mut q = p.clone();
        q.objective[1] = 7.0;
        assert_ne!(fingerprint(&p), fingerprint(&q));

        let mut q = p.clone();
        q.integer[0] = false;
        assert_ne!(fingerprint(&p), fingerprint(&q));
    }

    #[test]
    fn row_order_and_term_noise_do_not_change_the_key() {
        let p = toy(Sense::Maximize);

        let mut q = p.clone();
        q.constraints.swap(0, 1);
        assert_eq!(fingerprint(&p), fingerprint(&q));

        // Repeated and zero terms fold away: x + y == 0.5x + 0.5x + y + 0z.
        let mut q = p.clone();
        q.constraints[0] = Constraint {
            terms: vec![(VarId(0), 0.5), (VarId(0), 0.5), (VarId(1), 1.0), (VarId(1), 0.0)],
            relation: Relation::Le,
            rhs: 4.0,
        };
        assert_eq!(fingerprint(&p), fingerprint(&q));
        assert!(same_structure(&p, &q));
    }

    #[test]
    fn variable_permutation_is_alpha_equivalent() {
        // Same problem with variable order (x, y) swapped to (y, x).
        let p = toy(Sense::Maximize);
        let mut b = ProblemBuilder::new(Sense::Maximize);
        let y = b.add_var("y", true);
        let x = b.add_var("x", true);
        b.objective(x, 3.0);
        b.objective(y, 2.0);
        b.constraint(vec![(y, 1.0), (x, 1.0)], Relation::Le, 4.0);
        b.constraint(vec![(x, 1.0)], Relation::Le, 2.0);
        let q = b.build();
        assert_eq!(fingerprint(&p), fingerprint(&q));
        // α-equivalent but not structurally identical (different var order).
        assert!(!same_structure(&p, &q));
    }

    #[test]
    fn delta_fingerprints_are_order_invariant_and_positional() {
        let row = |v: usize, c: f64, rel: Relation, rhs: f64| Constraint {
            terms: vec![(VarId(v), c)],
            relation: rel,
            rhs,
        };
        let a = vec![row(0, 1.0, Relation::Le, 2.0), row(1, 1.0, Relation::Ge, 3.0)];
        let mut b = a.clone();
        b.swap(0, 1);
        assert_eq!(delta_rows_fingerprint(&a, 2), delta_rows_fingerprint(&b, 2));

        // Positional: the "same" row over a different base column differs.
        let c = vec![row(1, 1.0, Relation::Le, 2.0), row(1, 1.0, Relation::Ge, 3.0)];
        assert_ne!(delta_rows_fingerprint(&a, 2), delta_rows_fingerprint(&c, 2));

        // Term noise folds away.
        let noisy = vec![
            Constraint {
                terms: vec![(VarId(0), 0.5), (VarId(0), 0.5), (VarId(1), 0.0)],
                relation: Relation::Le,
                rhs: 2.0,
            },
            row(1, 1.0, Relation::Ge, 3.0),
        ];
        assert_eq!(delta_rows_fingerprint(&a, 2), delta_rows_fingerprint(&noisy, 2));

        // Empty delta is the distinguished zero key.
        assert_eq!(delta_rows_fingerprint(&[], 2), Fingerprint(0));
        assert_ne!(delta_rows_fingerprint(&a, 2), Fingerprint(0));
    }

    /// A crafted near-collision: both problems have the same variable set,
    /// the same objective, the same relations/rhs, and the same *global*
    /// multiset of coefficients {1, 1, 2, 2}; only the pairing of
    /// coefficients to rows differs. A hash of unordered coefficients alone
    /// would collide; the refinement's per-row multisets must not.
    #[test]
    fn near_collision_pair_separates() {
        let build = |rows: [[f64; 2]; 2]| {
            let mut b = ProblemBuilder::new(Sense::Maximize);
            let x = b.add_var("x", true);
            let y = b.add_var("y", true);
            b.objective(x, 1.0);
            b.objective(y, 1.0);
            for r in rows {
                b.constraint(vec![(x, r[0]), (y, r[1])], Relation::Le, 3.0);
            }
            b.build()
        };
        // {x + 2y <= 3, 2x + y <= 3} vs {x + y <= 3, 2x + 2y <= 3}.
        let p = build([[1.0, 2.0], [2.0, 1.0]]);
        let q = build([[1.0, 1.0], [2.0, 2.0]]);
        assert_ne!(fingerprint(&p), fingerprint(&q));
        // Sanity: the pair really is a near-collision — flat coefficient
        // multisets agree.
        let flat = |p: &Problem| {
            let mut all: Vec<u64> = p
                .constraints
                .iter()
                .flat_map(|c| c.terms.iter().map(|&(_, co)| co.to_bits()))
                .collect();
            all.sort_unstable();
            all
        };
        assert_eq!(flat(&p), flat(&q));
    }
}
