//! Resource budgets, consumption metering, and deterministic fault
//! injection for the solve pipeline.
//!
//! The analyzer must never hang and never abort: every solver entry point
//! accepts a [`SolveBudget`] describing how much work it may do, charges its
//! actual work to a shared [`BudgetMeter`], and degrades to a *safe but
//! looser* bound (tagged with a [`BoundQuality`]) when the budget runs out.
//! [`SolverFaults`] lets tests force each exhaustion path at an exact,
//! reproducible call index, so the whole degradation cascade is testable
//! without constructing adversarial ILPs.
//!
//! Time is counted in **ticks**, where one tick is one simplex pivot. Pivot
//! count is a deterministic, machine-independent proxy for wall-clock time:
//! a deadline expressed in ticks yields the same answer on every run and in
//! every environment, which a literal clock would not.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// How trustworthy a reported bound is.
///
/// Every quality is *safe* — a WCET bound is never below the true worst
/// case and a BCET bound never above the true best case — but only
/// [`Exact`](BoundQuality::Exact) is tight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BoundQuality {
    /// Proven optimal by complete branch & bound on every constraint set.
    Exact,
    /// At least one solve fell back to its LP-relaxation bound (rounded
    /// outward) after exhausting the exact-solve budget.
    Relaxed,
    /// Part of the problem was simplified before solving — e.g. disjunctive
    /// constraints were dropped because DNF expansion exceeded the set cap —
    /// so the bound covers a superset of the real feasible paths.
    Partial,
}

impl BoundQuality {
    /// The quality of a result combining two sub-results: the weaker of the
    /// two dominates (`Partial` < `Relaxed` < `Exact`).
    pub fn combine(self, other: BoundQuality) -> BoundQuality {
        self.max(other)
    }

    /// True when the bound is proven optimal.
    pub fn is_exact(self) -> bool {
        self == BoundQuality::Exact
    }
}

impl fmt::Display for BoundQuality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BoundQuality::Exact => "exact",
            BoundQuality::Relaxed => "relaxed",
            BoundQuality::Partial => "partial",
        })
    }
}

/// Resource limits for a solve pipeline run.
///
/// The budget is *shared* across everything charged to one [`BudgetMeter`]:
/// an analysis solving many constraint sets draws all of them from the same
/// tick pool, so a deadline caps the whole analysis, not each subproblem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveBudget {
    /// Deadline in ticks (simplex pivots) for the whole run; `None` means no
    /// deadline. This is the deterministic stand-in for wall-clock time.
    pub deadline_ticks: Option<u64>,
    /// Cap on iterations of a single LP solve; `None` uses the solver's own
    /// size-derived budget.
    pub max_lp_iters: Option<usize>,
    /// Cap on branch-and-bound nodes per ILP solve.
    pub max_nodes: usize,
    /// Cap on DNF constraint sets per analysis (enforced by `ipet-core`).
    pub max_sets: usize,
}

impl SolveBudget {
    /// The maximum node count used when no explicit budget is given.
    pub const DEFAULT_MAX_NODES: usize = 200_000;
    /// The maximum DNF set count used when no explicit budget is given.
    pub const DEFAULT_MAX_SETS: usize = 65_536;

    /// An effectively unlimited budget (the defaults).
    pub fn unlimited() -> SolveBudget {
        SolveBudget::default()
    }

    /// A budget with a tick deadline and defaults elsewhere.
    pub fn with_deadline(ticks: u64) -> SolveBudget {
        SolveBudget { deadline_ticks: Some(ticks), ..SolveBudget::default() }
    }
}

impl Default for SolveBudget {
    fn default() -> SolveBudget {
        SolveBudget {
            deadline_ticks: None,
            max_lp_iters: None,
            max_nodes: SolveBudget::DEFAULT_MAX_NODES,
            max_sets: SolveBudget::DEFAULT_MAX_SETS,
        }
    }
}

/// A shareable cooperative cancellation flag for in-flight solves.
///
/// Cancellation rides the existing budget machinery rather than adding a
/// second control path: a [`BudgetMeter`] carrying a cancelled token
/// reports its deadline as hit ([`BudgetMeter::deadline_hit`]) and its
/// remaining ticks as zero, so every solver loop that already honors tick
/// deadlines — branch-and-bound node expansion, LP entry, the plan-level
/// set driver — observes the cancellation at its next budget check and
/// degrades exactly as it would on exhaustion: to a certified-safe
/// relaxed/partial bound, never a panic, a wedged worker or an unsafe
/// answer.
///
/// Cancellation is *cooperative* and checked at the same granularity as
/// deadlines (per node expansion and per LP call), so the latency from
/// [`cancel`](CancelToken::cancel) to the solve unwinding is bounded by
/// one LP solve, itself bounded by the solver's size-derived iteration cap.
///
/// Tokens are cheap (`Arc<AtomicBool>`) and clones share the flag. The
/// default token is never cancelled and costs one relaxed load per check.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, not-yet-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Flips the token; every meter sharing it sees its budget as spent.
    /// Idempotent and irrevocable: a token is single-use by design, so a
    /// late cancel (after the work completed) is harmless.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// True once [`cancel`](CancelToken::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Accumulated solver work, shared across all solves of one pipeline run.
///
/// The meter is `Send + Sync`: counters are atomics, so several workers can
/// charge one meter concurrently and a shared deadline holds globally.
/// Workers check `deadline_hit` *before* charging, so a worker can overshoot
/// a deadline by at most the one charge it had already committed to — with
/// `w` workers the pool as a whole never over-spends by more than one charge
/// per worker.
#[derive(Debug, Default)]
pub struct BudgetMeter {
    /// Ticks consumed (one tick = one simplex pivot).
    ticks: AtomicU64,
    /// LP relaxations solved.
    lp_calls: AtomicU64,
    /// Branch-and-bound nodes expanded.
    nodes: AtomicU64,
    /// Cooperative cancellation: when cancelled, the meter reports its
    /// deadline as hit regardless of ticks spent, so every deadline-aware
    /// solver loop degrades as if the budget were exhausted.
    cancel: CancelToken,
}

impl BudgetMeter {
    /// A fresh meter with nothing consumed.
    pub fn new() -> BudgetMeter {
        BudgetMeter::default()
    }

    /// A fresh meter observing `cancel`: once the token fires, the meter
    /// behaves as if its deadline had passed
    /// ([`deadline_hit`](BudgetMeter::deadline_hit) is true and
    /// [`ticks_left`](BudgetMeter::ticks_left) is `Some(0)` even without
    /// a deadline).
    pub fn with_cancel(cancel: CancelToken) -> BudgetMeter {
        BudgetMeter { cancel, ..BudgetMeter::default() }
    }

    /// The cancellation token this meter observes (the default token of a
    /// plain meter is never cancelled).
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Charges `ticks` pivots to the meter (saturating, never wraps).
    pub fn charge_ticks(&self, ticks: u64) {
        // `fetch_update` instead of `fetch_add` so the count saturates at
        // `u64::MAX` rather than wrapping back below a deadline.
        let _ = self
            .ticks
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |t| Some(t.saturating_add(ticks)));
    }

    /// Records one LP relaxation solved.
    pub fn add_lp_call(&self) {
        self.lp_calls.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one branch-and-bound node expanded.
    pub fn add_node(&self) {
        self.nodes.fetch_add(1, Ordering::Relaxed);
    }

    /// Ticks consumed so far (one tick = one simplex pivot).
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// LP relaxations solved so far.
    pub fn lp_calls(&self) -> u64 {
        self.lp_calls.load(Ordering::Relaxed)
    }

    /// Branch-and-bound nodes expanded so far.
    pub fn nodes(&self) -> u64 {
        self.nodes.load(Ordering::Relaxed)
    }

    /// Folds another meter's consumption into this one (used when a pool
    /// aggregates per-worker meters into a batch total).
    pub fn absorb(&self, other: &BudgetMeter) {
        self.charge_ticks(other.ticks());
        self.lp_calls.fetch_add(other.lp_calls(), Ordering::Relaxed);
        self.nodes.fetch_add(other.nodes(), Ordering::Relaxed);
    }

    /// Ticks still available under `budget`, or `None` when no deadline is
    /// set. `Some(0)` means the deadline has passed — or the meter's
    /// cancellation token fired, which reports as an exhausted deadline
    /// even when the budget has none.
    pub fn ticks_left(&self, budget: &SolveBudget) -> Option<u64> {
        if self.cancel.is_cancelled() {
            return Some(0);
        }
        budget.deadline_ticks.map(|d| d.saturating_sub(self.ticks()))
    }

    /// True when `budget`'s deadline has been reached or the meter's
    /// cancellation token has fired.
    pub fn deadline_hit(&self, budget: &SolveBudget) -> bool {
        matches!(self.ticks_left(budget), Some(0))
    }
}

impl Clone for BudgetMeter {
    fn clone(&self) -> BudgetMeter {
        let m = BudgetMeter::with_cancel(self.cancel.clone());
        m.absorb(self);
        m
    }
}

/// Deterministic fault injection for the solver stack.
///
/// Each `force_*_at` field names a zero-based call index at which the
/// corresponding failure is forced, regardless of the actual problem:
///
/// * [`limit_at`](SolverFaults::limit_at) — the N-th branch-and-bound node
///   expansion acts as if the node budget were exhausted (`LimitReached`);
/// * [`infeasible_at`](SolverFaults::infeasible_at) — the N-th LP call
///   reports `Infeasible`;
/// * [`numerical_at`](SolverFaults::numerical_at) — the N-th LP call
///   reports `Numerical` (as if pivoting had met a NaN);
/// * [`panic_at`](SolverFaults::panic_at) /
///   [`panic_always_at`](SolverFaults::panic_always_at) — the N-th whole ILP
///   solve panics on entry (transient vs. sticky across a retry);
/// * [`corrupt_witness_at`](SolverFaults::corrupt_witness_at) /
///   [`corrupt_bound_at`](SolverFaults::corrupt_bound_at) — the N-th ILP
///   solve silently returns a corrupted witness vector or claimed bound, so
///   tests can prove the auditor rejects bad certificates.
///
/// A second family of faults targets the persistent result store's IO
/// path (`ipet-store` consumes them; the solver itself never looks):
///
/// * [`fail_write_at`](SolverFaults::fail_write_at) — the N-th store flush
///   fails outright, as if the disk were full;
/// * [`torn_write_at`](SolverFaults::torn_write_at) — the N-th store flush
///   persists only a prefix of its bytes, modelling a crash mid-write;
/// * [`corrupt_record_at`](SolverFaults::corrupt_record_at) — the N-th
///   record serialized flips one payload bit, modelling silent bit rot;
/// * [`fail_open`](SolverFaults::fail_open) — opening the store file fails,
///   forcing the in-memory fallback.
///
/// IO faults are deliberately excluded from [`armed`](SolverFaults::armed):
/// they must never reroute a solve (the whole point is proving that store
/// damage degrades to ordinary cold solves). Use
/// [`io_armed`](SolverFaults::io_armed) to test for them.
///
/// Call counters live in the struct, so one `SolverFaults` value tracks
/// indices across every solve it is threaded through. The default value
/// injects nothing and is free to pass everywhere.
#[derive(Debug, Clone, Default)]
pub struct SolverFaults {
    force_limit_at: Option<u64>,
    force_infeasible_at: Option<u64>,
    force_numerical_at: Option<u64>,
    force_panic_at: Option<u64>,
    panic_sticky: bool,
    force_corrupt_witness_at: Option<u64>,
    force_corrupt_bound_at: Option<u64>,
    force_fail_write_at: Option<u64>,
    force_torn_write_at: Option<u64>,
    force_corrupt_record_at: Option<u64>,
    force_fail_open: bool,
    nodes_seen: u64,
    lps_seen: u64,
    solves_seen: u64,
    writes_seen: u64,
    records_seen: u64,
}

impl SolverFaults {
    /// No injected faults.
    pub fn none() -> SolverFaults {
        SolverFaults::default()
    }

    /// Forces budget exhaustion at the `index`-th branch-and-bound node.
    pub fn limit_at(index: u64) -> SolverFaults {
        SolverFaults { force_limit_at: Some(index), ..SolverFaults::default() }
    }

    /// Forces the `index`-th LP call to report infeasibility.
    pub fn infeasible_at(index: u64) -> SolverFaults {
        SolverFaults { force_infeasible_at: Some(index), ..SolverFaults::default() }
    }

    /// Forces the `index`-th LP call to report a numerical failure.
    pub fn numerical_at(index: u64) -> SolverFaults {
        SolverFaults { force_numerical_at: Some(index), ..SolverFaults::default() }
    }

    /// Forces the `index`-th ILP solve to panic on entry, *transiently*: a
    /// retry harness (like the pool's fresh-worker retry) is expected to
    /// [`disarm_panic`](SolverFaults::disarm_panic) before retrying, so the
    /// retry succeeds. Use [`panic_always_at`](SolverFaults::panic_always_at)
    /// for a panic that survives retries.
    pub fn panic_at(index: u64) -> SolverFaults {
        SolverFaults { force_panic_at: Some(index), ..SolverFaults::default() }
    }

    /// Forces the `index`-th ILP solve to panic on entry, *stickily*: the
    /// fault stays armed across [`disarm_panic`](SolverFaults::disarm_panic),
    /// modelling a deterministic crash that a retry cannot outrun.
    pub fn panic_always_at(index: u64) -> SolverFaults {
        SolverFaults { force_panic_at: Some(index), panic_sticky: true, ..SolverFaults::default() }
    }

    /// Forces the `index`-th ILP solve to return a silently corrupted
    /// witness vector (its first entry is shifted by +1), leaving the
    /// claimed bound untouched.
    pub fn corrupt_witness_at(index: u64) -> SolverFaults {
        SolverFaults { force_corrupt_witness_at: Some(index), ..SolverFaults::default() }
    }

    /// Forces the `index`-th ILP solve to return a silently corrupted
    /// claimed bound, leaving the witness untouched.
    pub fn corrupt_bound_at(index: u64) -> SolverFaults {
        SolverFaults { force_corrupt_bound_at: Some(index), ..SolverFaults::default() }
    }

    /// Forces the `index`-th store flush to fail outright (disk-full
    /// model): no bytes reach the file and the flush reports an error.
    pub fn fail_write_at(index: u64) -> SolverFaults {
        SolverFaults { force_fail_write_at: Some(index), ..SolverFaults::default() }
    }

    /// Forces the `index`-th store flush to persist only a prefix of its
    /// bytes (crash-mid-write model): the truncated tail must quarantine on
    /// the next open instead of replaying.
    pub fn torn_write_at(index: u64) -> SolverFaults {
        SolverFaults { force_torn_write_at: Some(index), ..SolverFaults::default() }
    }

    /// Forces the `index`-th record serialized into a store flush to flip
    /// one payload bit (silent bit-rot model): the record's checksum must
    /// catch it on the next open.
    pub fn corrupt_record_at(index: u64) -> SolverFaults {
        SolverFaults { force_corrupt_record_at: Some(index), ..SolverFaults::default() }
    }

    /// Forces opening the store file to fail, exercising the in-memory
    /// fallback mode.
    pub fn fail_open() -> SolverFaults {
        SolverFaults { force_fail_open: true, ..SolverFaults::default() }
    }

    /// Disarms a transient panic fault before a retry; sticky panics
    /// ([`panic_always_at`](SolverFaults::panic_always_at)) stay armed.
    pub fn disarm_panic(&mut self) {
        if !self.panic_sticky {
            self.force_panic_at = None;
        }
    }

    /// True when any *solver* fault is armed (used to skip bookkeeping on
    /// the default value in hot paths, and to route faulted solves down the
    /// cold path). IO faults are excluded — see [`io_armed`](Self::io_armed).
    pub fn armed(&self) -> bool {
        self.force_limit_at.is_some()
            || self.force_infeasible_at.is_some()
            || self.force_numerical_at.is_some()
            || self.force_panic_at.is_some()
            || self.force_corrupt_witness_at.is_some()
            || self.force_corrupt_bound_at.is_some()
    }

    /// True when any store IO fault is armed. Orthogonal to
    /// [`armed`](Self::armed): IO faults damage persistence, never solves.
    pub fn io_armed(&self) -> bool {
        self.force_fail_write_at.is_some()
            || self.force_torn_write_at.is_some()
            || self.force_corrupt_record_at.is_some()
            || self.force_fail_open
    }

    /// True when opening the store file is forced to fail.
    pub fn open_fault(&self) -> bool {
        self.force_fail_open
    }

    /// Records one store flush; returns the fault forced at this index, if
    /// any. Called once per flush by `ipet-store`.
    pub fn write_fault(&mut self) -> Option<IoFault> {
        let here = self.writes_seen;
        self.writes_seen += 1;
        if self.force_fail_write_at == Some(here) {
            Some(IoFault::FailWrite)
        } else if self.force_torn_write_at == Some(here) {
            Some(IoFault::TornWrite)
        } else {
            None
        }
    }

    /// Records one record serialization; true when this record's payload
    /// must be corrupted. Called once per record by `ipet-store`.
    pub fn record_fault(&mut self) -> bool {
        let here = self.records_seen;
        self.records_seen += 1;
        self.force_corrupt_record_at == Some(here)
    }

    /// Records one branch-and-bound node expansion; true when the node-limit
    /// fault fires here.
    pub fn node_fault(&mut self) -> bool {
        let here = self.nodes_seen;
        self.nodes_seen += 1;
        self.force_limit_at == Some(here)
    }

    /// Records one whole ILP solve; returns the fault forced at this index,
    /// if any. Called once at the top of `solve_ilp_budgeted`.
    pub fn solve_fault(&mut self) -> Option<SolveFault> {
        let here = self.solves_seen;
        self.solves_seen += 1;
        if self.force_panic_at == Some(here) {
            Some(SolveFault::Panic)
        } else if self.force_corrupt_witness_at == Some(here) {
            Some(SolveFault::CorruptWitness)
        } else if self.force_corrupt_bound_at == Some(here) {
            Some(SolveFault::CorruptBound)
        } else {
            None
        }
    }

    /// Records one LP call; returns the fault forced at this index, if any.
    pub fn lp_fault(&mut self) -> Option<LpFault> {
        let here = self.lps_seen;
        self.lps_seen += 1;
        if self.force_infeasible_at == Some(here) {
            Some(LpFault::Infeasible)
        } else if self.force_numerical_at == Some(here) {
            Some(LpFault::Numerical)
        } else {
            None
        }
    }
}

/// A failure forced into an LP call by [`SolverFaults::lp_fault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpFault {
    /// Report the system as infeasible.
    Infeasible,
    /// Report a numerical breakdown.
    Numerical,
}

/// A failure forced into a whole ILP solve by [`SolverFaults::solve_fault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveFault {
    /// Panic on entry (exercises the pool's `catch_unwind` isolation).
    Panic,
    /// Return a silently corrupted witness vector.
    CorruptWitness,
    /// Return a silently corrupted claimed bound.
    CorruptBound,
}

/// A failure forced into a store flush by [`SolverFaults::write_fault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// The flush fails outright; no bytes reach the file.
    FailWrite,
    /// Only a prefix of the flush's bytes is persisted.
    TornWrite,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_combines_to_the_weaker() {
        use BoundQuality::*;
        assert_eq!(Exact.combine(Exact), Exact);
        assert_eq!(Exact.combine(Relaxed), Relaxed);
        assert_eq!(Relaxed.combine(Partial), Partial);
        assert_eq!(Partial.combine(Exact), Partial);
        assert!(Exact.is_exact() && !Relaxed.is_exact());
    }

    #[test]
    fn meter_tracks_deadline() {
        let budget = SolveBudget::with_deadline(10);
        let meter = BudgetMeter::new();
        assert_eq!(meter.ticks_left(&budget), Some(10));
        assert!(!meter.deadline_hit(&budget));
        meter.charge_ticks(10);
        assert!(meter.deadline_hit(&budget));
        meter.charge_ticks(u64::MAX); // saturates, no overflow
        assert_eq!(meter.ticks_left(&budget), Some(0));

        let unlimited = SolveBudget::unlimited();
        assert_eq!(meter.ticks_left(&unlimited), None);
        assert!(!meter.deadline_hit(&unlimited));
    }

    #[test]
    fn meter_is_shareable_and_absorbs() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BudgetMeter>();

        let a = BudgetMeter::new();
        a.charge_ticks(3);
        a.add_lp_call();
        a.add_node();
        let b = a.clone();
        b.absorb(&a);
        assert_eq!((b.ticks(), b.lp_calls(), b.nodes()), (6, 2, 2));
        assert_eq!((a.ticks(), a.lp_calls(), a.nodes()), (3, 1, 1));
    }

    /// Two workers sharing one meter under a common deadline: each worker
    /// checks `deadline_hit` before committing a one-tick charge, so the
    /// pool can overshoot the deadline by at most one tick per worker.
    #[test]
    fn shared_meter_overshoots_at_most_one_tick_per_worker() {
        const DEADLINE: u64 = 1_000;
        const WORKERS: u64 = 2;
        let budget = SolveBudget::with_deadline(DEADLINE);
        let meter = BudgetMeter::new();
        std::thread::scope(|scope| {
            for _ in 0..WORKERS {
                scope.spawn(|| loop {
                    if meter.deadline_hit(&budget) {
                        break;
                    }
                    meter.charge_ticks(1);
                });
            }
        });
        assert!(meter.ticks() >= DEADLINE, "workers stopped early: {} ticks", meter.ticks());
        assert!(
            meter.ticks() <= DEADLINE + WORKERS,
            "over-spent by more than one tick per worker: {} ticks",
            meter.ticks()
        );
    }

    #[test]
    fn cancellation_reports_as_an_exhausted_deadline() {
        let meter = BudgetMeter::new();
        let unlimited = SolveBudget::unlimited();
        assert!(!meter.deadline_hit(&unlimited));
        meter.cancel_token().cancel();
        assert!(meter.deadline_hit(&unlimited), "cancel must bite without a deadline");
        assert_eq!(meter.ticks_left(&unlimited), Some(0));
        assert_eq!(meter.ticks_left(&SolveBudget::with_deadline(1000)), Some(0));
    }

    #[test]
    fn cancel_tokens_are_shared_across_clones_and_meters() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        let a = BudgetMeter::with_cancel(token.clone());
        let b = a.clone(); // clones share the token
        let c = BudgetMeter::with_cancel(token.clone());
        token.cancel();
        token.cancel(); // idempotent
        let budget = SolveBudget::unlimited();
        assert!(a.deadline_hit(&budget) && b.deadline_hit(&budget) && c.deadline_hit(&budget));
        // A meter with its own default token is unaffected.
        assert!(!BudgetMeter::new().deadline_hit(&budget));
    }

    #[test]
    fn faults_fire_at_exact_indices() {
        let mut faults = SolverFaults::limit_at(2);
        assert!(faults.armed());
        assert!(!faults.node_fault());
        assert!(!faults.node_fault());
        assert!(faults.node_fault());
        assert!(!faults.node_fault());

        let mut faults = SolverFaults::infeasible_at(1);
        assert_eq!(faults.lp_fault(), None);
        assert_eq!(faults.lp_fault(), Some(LpFault::Infeasible));
        assert_eq!(faults.lp_fault(), None);

        let mut faults = SolverFaults::numerical_at(0);
        assert_eq!(faults.lp_fault(), Some(LpFault::Numerical));

        let mut none = SolverFaults::none();
        assert!(!none.armed());
        assert!(!none.node_fault());
        assert_eq!(none.lp_fault(), None);
        assert_eq!(none.solve_fault(), None);
    }

    #[test]
    fn solve_faults_fire_at_exact_indices() {
        let mut faults = SolverFaults::corrupt_witness_at(1);
        assert!(faults.armed());
        assert_eq!(faults.solve_fault(), None);
        assert_eq!(faults.solve_fault(), Some(SolveFault::CorruptWitness));
        assert_eq!(faults.solve_fault(), None);

        let mut faults = SolverFaults::corrupt_bound_at(0);
        assert_eq!(faults.solve_fault(), Some(SolveFault::CorruptBound));

        let mut faults = SolverFaults::panic_at(0);
        assert_eq!(faults.solve_fault(), Some(SolveFault::Panic));
    }

    #[test]
    fn io_faults_fire_at_exact_indices_and_stay_off_the_solve_path() {
        let mut faults = SolverFaults::fail_write_at(1);
        assert!(faults.io_armed());
        assert!(!faults.armed(), "IO faults must never reroute a solve");
        assert_eq!(faults.write_fault(), None);
        assert_eq!(faults.write_fault(), Some(IoFault::FailWrite));
        assert_eq!(faults.write_fault(), None);

        let mut faults = SolverFaults::torn_write_at(0);
        assert_eq!(faults.write_fault(), Some(IoFault::TornWrite));
        assert!(!faults.armed());

        let mut faults = SolverFaults::corrupt_record_at(2);
        assert!(!faults.record_fault());
        assert!(!faults.record_fault());
        assert!(faults.record_fault());
        assert!(!faults.record_fault());

        let faults = SolverFaults::fail_open();
        assert!(faults.open_fault() && faults.io_armed() && !faults.armed());

        let mut none = SolverFaults::none();
        assert!(!none.io_armed() && !none.open_fault());
        assert_eq!(none.write_fault(), None);
        assert!(!none.record_fault());
    }

    #[test]
    fn transient_panics_disarm_but_sticky_panics_stay() {
        let mut transient = SolverFaults::panic_at(0);
        transient.disarm_panic();
        assert_eq!(transient.solve_fault(), None, "transient panic must disarm before a retry");

        let mut sticky = SolverFaults::panic_always_at(0);
        sticky.disarm_panic();
        assert_eq!(sticky.solve_fault(), Some(SolveFault::Panic), "sticky panic survives disarm");
    }
}
