//! Centralized f64→count rounding for solver witnesses.
//!
//! Witness vectors leave the simplex as `f64`s, but everything downstream —
//! block execution counts, per-block cycle contributions, the exact-arithmetic
//! auditor — wants non-negative integers. Historically each consumer rounded
//! on its own (`.round() as i64` scattered through `estimate.rs`); this module
//! is the single place where a float is allowed to become a count, under one
//! tolerance ([`WITNESS_TOL`]) shared by the estimator, the pool's solve
//! cache, and `ipet-audit`.
//!
//! The split of responsibilities with the auditor is deliberate: *rounding*
//! (here) is the only step allowed to do floating-point arithmetic; the
//! *checking* (in `ipet-audit`) consumes the rounded integers and runs in
//! exact arithmetic only.

use std::fmt;

/// The one tolerance under which a witness entry (or a claimed objective
/// value) is accepted as an integer. Matches the branch-and-bound
/// integrality tolerance so every solution the solver calls integral rounds
/// cleanly.
pub const WITNESS_TOL: f64 = 1e-6;

/// Why a value refused to round to a count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RoundError {
    /// The entry is NaN or infinite.
    NonFinite {
        /// Index of the offending variable (or 0 for scalar claims).
        var: usize,
    },
    /// The entry is farther than [`WITNESS_TOL`] from every integer.
    NotIntegral {
        /// Index of the offending variable (or 0 for scalar claims).
        var: usize,
        /// The offending value.
        value: f64,
    },
    /// The entry rounds to a negative count.
    Negative {
        /// Index of the offending variable (or 0 for scalar claims).
        var: usize,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for RoundError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoundError::NonFinite { var } => write!(f, "witness entry {var} is not finite"),
            RoundError::NotIntegral { var, value } => {
                write!(f, "witness entry {var} = {value} is not integral within {WITNESS_TOL:e}")
            }
            RoundError::Negative { var, value } => {
                write!(f, "witness entry {var} = {value} rounds to a negative count")
            }
        }
    }
}

impl std::error::Error for RoundError {}

fn round_entry(var: usize, value: f64, tol: f64) -> Result<i64, RoundError> {
    if !value.is_finite() {
        return Err(RoundError::NonFinite { var });
    }
    let rounded = value.round();
    if (value - rounded).abs() > tol {
        return Err(RoundError::NotIntegral { var, value });
    }
    if rounded < 0.0 {
        return Err(RoundError::Negative { var, value });
    }
    Ok(rounded as i64)
}

/// Rounds a whole witness vector to non-negative integer counts.
///
/// Every entry must be within [`WITNESS_TOL`] of a non-negative integer;
/// the first offending entry is reported otherwise. This is the only
/// sanctioned path from a solver witness to execution counts.
pub fn round_witness(x: &[f64]) -> Result<Vec<i64>, RoundError> {
    x.iter().enumerate().map(|(var, &v)| round_entry(var, v, WITNESS_TOL)).collect()
}

/// Rounds a claimed objective value to an integer count of cycles.
///
/// Claims can be large (millions of cycles), so the tolerance scales with
/// magnitude: `WITNESS_TOL * (1 + |value|)`, the same shape the solve cache
/// historically used for objective validation.
pub fn round_claimed(value: f64) -> Result<i64, RoundError> {
    round_entry(0, value, WITNESS_TOL * (1.0 + value.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_integers_round_trip() {
        assert_eq!(round_witness(&[0.0, 1.0, 41.0]), Ok(vec![0, 1, 41]));
    }

    #[test]
    fn near_integers_snap_within_tolerance() {
        assert_eq!(round_witness(&[2.0 - 1e-9, 3.0 + 1e-7]), Ok(vec![2, 3]));
        // A tiny negative excursion still counts as zero.
        assert_eq!(round_witness(&[-1e-9]), Ok(vec![0]));
    }

    #[test]
    fn fractional_entries_are_refused() {
        assert_eq!(round_witness(&[1.0, 0.5]), Err(RoundError::NotIntegral { var: 1, value: 0.5 }));
    }

    #[test]
    fn negative_counts_are_refused() {
        assert_eq!(round_witness(&[-1.0]), Err(RoundError::Negative { var: 0, value: -1.0 }));
    }

    #[test]
    fn non_finite_entries_are_refused() {
        assert_eq!(round_witness(&[f64::NAN]), Err(RoundError::NonFinite { var: 0 }));
        assert_eq!(round_witness(&[f64::INFINITY]), Err(RoundError::NonFinite { var: 0 }));
    }

    #[test]
    fn claimed_values_use_relative_tolerance() {
        // 4e6 cycles with 1e-7 absolute error: inside the scaled tolerance.
        assert_eq!(round_claimed(4_000_000.0 + 0.1), Ok(4_000_000));
        assert!(round_claimed(10.5).is_err());
    }

    #[test]
    fn deviation_exactly_at_witness_tol_is_accepted() {
        // The gate is `> WITNESS_TOL`: a deviation of *exactly* the
        // tolerance must round. At 0 the offset is the tolerance constant
        // itself, so the deviation is exact by construction.
        assert_eq!(round_witness(&[WITNESS_TOL]), Ok(vec![0]));
        assert_eq!(round_witness(&[-WITNESS_TOL]), Ok(vec![0]));
        // Away from 0 the f64 sum may land a ULP either side of the
        // tolerance; round_entry must agree exactly with the measured
        // deviation, whichever side it lands on.
        for base in [1.0f64, 7.0, 1_000.0] {
            for value in [base + WITNESS_TOL, base - WITNESS_TOL] {
                let within = (value - value.round()).abs() <= WITNESS_TOL;
                let got = round_witness(&[value]);
                if within {
                    assert_eq!(got, Ok(vec![base as i64]), "{value} within tol");
                } else {
                    assert_eq!(
                        got,
                        Err(RoundError::NotIntegral { var: 0, value }),
                        "{value} past tol"
                    );
                }
            }
        }
        assert_eq!(
            round_witness(&[1.0 + 2.0 * WITNESS_TOL]),
            Err(RoundError::NotIntegral { var: 0, value: 1.0 + 2.0 * WITNESS_TOL })
        );
    }

    #[test]
    fn negative_near_zero_counts_clamp_to_zero_up_to_tol() {
        // Simplex output for a zero count often lands epsilon-negative.
        // Anything within the tolerance of zero is the count 0 (round(-tol)
        // is -0.0, which is not < 0.0); past the tolerance it is refused as
        // non-integral, and a true negative integer is refused as negative.
        assert_eq!(round_witness(&[-WITNESS_TOL]), Ok(vec![0]));
        assert_eq!(round_witness(&[-WITNESS_TOL / 2.0]), Ok(vec![0]));
        assert_eq!(
            round_witness(&[-3.0 * WITNESS_TOL]),
            Err(RoundError::NotIntegral { var: 0, value: -3.0 * WITNESS_TOL })
        );
        assert_eq!(
            round_witness(&[-1.0 + 1e-9]),
            Err(RoundError::Negative { var: 0, value: -1.0 + 1e-9 })
        );
    }

    #[test]
    fn large_counts_near_the_i64_boundary() {
        // Counts big enough that f64 spacing exceeds 1 are exactly
        // representable integers and must survive the i64 conversion
        // without wrapping. 2^62 is exactly representable in f64.
        let big = (1i64 << 62) as f64;
        assert_eq!(round_witness(&[big]), Ok(vec![1i64 << 62]));
        // i64::MAX itself is not representable; the nearest f64 is 2^63,
        // which `as i64` saturates to i64::MAX rather than wrapping.
        let top = i64::MAX as f64;
        assert_eq!(round_witness(&[top]), Ok(vec![i64::MAX]));
        // Claimed bounds at the same magnitude use the relative tolerance,
        // so a large absolute wobble still rounds.
        assert_eq!(round_claimed(big + 1024.0), Ok((big + 1024.0) as i64));
    }
}
