//! Centralized f64→count rounding for solver witnesses.
//!
//! Witness vectors leave the simplex as `f64`s, but everything downstream —
//! block execution counts, per-block cycle contributions, the exact-arithmetic
//! auditor — wants non-negative integers. Historically each consumer rounded
//! on its own (`.round() as i64` scattered through `estimate.rs`); this module
//! is the single place where a float is allowed to become a count, under one
//! tolerance ([`WITNESS_TOL`]) shared by the estimator, the pool's solve
//! cache, and `ipet-audit`.
//!
//! The split of responsibilities with the auditor is deliberate: *rounding*
//! (here) is the only step allowed to do floating-point arithmetic; the
//! *checking* (in `ipet-audit`) consumes the rounded integers and runs in
//! exact arithmetic only.

use std::fmt;

/// The one tolerance under which a witness entry (or a claimed objective
/// value) is accepted as an integer. Matches the branch-and-bound
/// integrality tolerance so every solution the solver calls integral rounds
/// cleanly.
pub const WITNESS_TOL: f64 = 1e-6;

/// Why a value refused to round to a count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RoundError {
    /// The entry is NaN or infinite.
    NonFinite {
        /// Index of the offending variable (or 0 for scalar claims).
        var: usize,
    },
    /// The entry is farther than [`WITNESS_TOL`] from every integer.
    NotIntegral {
        /// Index of the offending variable (or 0 for scalar claims).
        var: usize,
        /// The offending value.
        value: f64,
    },
    /// The entry rounds to a negative count.
    Negative {
        /// Index of the offending variable (or 0 for scalar claims).
        var: usize,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for RoundError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoundError::NonFinite { var } => write!(f, "witness entry {var} is not finite"),
            RoundError::NotIntegral { var, value } => {
                write!(f, "witness entry {var} = {value} is not integral within {WITNESS_TOL:e}")
            }
            RoundError::Negative { var, value } => {
                write!(f, "witness entry {var} = {value} rounds to a negative count")
            }
        }
    }
}

impl std::error::Error for RoundError {}

fn round_entry(var: usize, value: f64, tol: f64) -> Result<i64, RoundError> {
    if !value.is_finite() {
        return Err(RoundError::NonFinite { var });
    }
    let rounded = value.round();
    if (value - rounded).abs() > tol {
        return Err(RoundError::NotIntegral { var, value });
    }
    if rounded < 0.0 {
        return Err(RoundError::Negative { var, value });
    }
    Ok(rounded as i64)
}

/// Rounds a whole witness vector to non-negative integer counts.
///
/// Every entry must be within [`WITNESS_TOL`] of a non-negative integer;
/// the first offending entry is reported otherwise. This is the only
/// sanctioned path from a solver witness to execution counts.
pub fn round_witness(x: &[f64]) -> Result<Vec<i64>, RoundError> {
    x.iter().enumerate().map(|(var, &v)| round_entry(var, v, WITNESS_TOL)).collect()
}

/// Rounds a claimed objective value to an integer count of cycles.
///
/// Claims can be large (millions of cycles), so the tolerance scales with
/// magnitude: `WITNESS_TOL * (1 + |value|)`, the same shape the solve cache
/// historically used for objective validation.
pub fn round_claimed(value: f64) -> Result<i64, RoundError> {
    round_entry(0, value, WITNESS_TOL * (1.0 + value.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_integers_round_trip() {
        assert_eq!(round_witness(&[0.0, 1.0, 41.0]), Ok(vec![0, 1, 41]));
    }

    #[test]
    fn near_integers_snap_within_tolerance() {
        assert_eq!(round_witness(&[2.0 - 1e-9, 3.0 + 1e-7]), Ok(vec![2, 3]));
        // A tiny negative excursion still counts as zero.
        assert_eq!(round_witness(&[-1e-9]), Ok(vec![0]));
    }

    #[test]
    fn fractional_entries_are_refused() {
        assert_eq!(round_witness(&[1.0, 0.5]), Err(RoundError::NotIntegral { var: 1, value: 0.5 }));
    }

    #[test]
    fn negative_counts_are_refused() {
        assert_eq!(round_witness(&[-1.0]), Err(RoundError::Negative { var: 0, value: -1.0 }));
    }

    #[test]
    fn non_finite_entries_are_refused() {
        assert_eq!(round_witness(&[f64::NAN]), Err(RoundError::NonFinite { var: 0 }));
        assert_eq!(round_witness(&[f64::INFINITY]), Err(RoundError::NonFinite { var: 0 }));
    }

    #[test]
    fn claimed_values_use_relative_tolerance() {
        // 4e6 cycles with 1e-7 absolute error: inside the scaled tolerance.
        assert_eq!(round_claimed(4_000_000.0 + 0.1), Ok(4_000_000));
        assert!(round_claimed(10.5).is_err());
    }
}
