//! Base+delta problem decomposition and dual-simplex warm starting.
//!
//! IPET's DNF expansion produces many ILPs per routine that share every
//! structural row and differ only in a handful of functionality conjuncts.
//! This module factors that family into one immutable [`BaseProblem`] (the
//! rows common to every set, plus objective and bounds) and one small
//! [`DeltaSet`] per constraint set, and re-optimizes each delta from a
//! snapshot of the base optimum instead of solving each composed problem
//! from scratch.
//!
//! ## Bit-identity contract
//!
//! Warm-started results are required to be **bit-identical** to cold
//! solves — same resolution, same witness, same statistics — at any job
//! order and any worker count. A dual-simplex re-optimization cannot
//! guarantee that unconditionally (different pivot paths reach different
//! floating-point representations, and ties can pick different optimal
//! vertices), so a warm result is *accepted* only when it is provably the
//! one the cold path returns:
//!
//! 1. the re-optimized LP is **optimal** and its witness rounds to integer
//!    counts ([`round_witness`]) with every variable integer-typed;
//! 2. the optimum is **unique** (every non-basic column prices out strictly
//!    positive), so the cold root relaxation must land on the same vertex
//!    and return immediately with `{lp_calls: 1, nodes: 1,
//!    first_relaxation_integral: true}`;
//! 3. the rounded witness **exactly certifies** against the composed
//!    problem via the injected `certify` callback (the caller supplies
//!    `ipet-audit`'s integer-arithmetic check, which keeps this crate free
//!    of a dependency cycle).
//!
//! Everything else — dual infeasibility, iteration limits, fractional or
//! tied optima, certification failures — falls back to the ordinary cold
//! branch-and-bound solve and counts `lp.warm.misses`. Witness vectors and
//! objective values of accepted results are canonicalized to their rounded
//! integer form (the cold path applies the same canonicalization), which
//! makes the equality hold bit for bit rather than merely within tolerance.
//! Under `debug_assertions` every accepted warm result is additionally
//! shadow-solved cold and asserted identical.
//!
//! Warm starting is only attempted under effectively unconstrained budgets
//! (no tick deadline, no per-LP iteration cap, at least one node): under a
//! deadline the cold path's tick accounting is what drives degradation, and
//! the warm path must never change *which* results degrade.

use crate::backend::{solver_backend, SolverBackend};
use crate::budget::{BudgetMeter, SolveBudget, SolverFaults};
use crate::fingerprint::{delta_rows_fingerprint, fingerprint, Fingerprint};
use crate::ilp::{solve_ilp_budgeted, IlpResolution, IlpStats};
use crate::model::{Constraint, Problem, Relation};
use crate::presolve::{presolve, IntProblem, IntRow, MappedRow, Reduced};
use crate::round::{round_claimed, round_witness};
use crate::simplex::{build_instance, DualEnd, PrimalEnd, SimplexInstance};
use crate::sparse::{SparseDualEnd, SparseEnd, SparseInstance};

/// Exact-certification callback: `(composed problem, rounded witness,
/// claimed objective) -> certified?`. Supplied by the caller (the analysis
/// core injects `ipet-audit`'s exact integer check) so `ipet-lp` does not
/// depend on the auditor.
pub type CertifyFn<'c> = &'c (dyn Fn(&Problem, &[f64], i64) -> bool + 'c);

/// The rows one DNF constraint set adds on top of a shared base problem.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DeltaSet {
    /// Extra constraint rows; variable ids index the base problem's
    /// variables.
    pub rows: Vec<Constraint>,
}

impl DeltaSet {
    /// A delta carrying the given rows.
    pub fn new(rows: Vec<Constraint>) -> DeltaSet {
        DeltaSet { rows }
    }

    /// True when the delta adds nothing (the composed problem *is* the
    /// base).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// An immutable shared base problem: objective, variable bounds and the
/// constraint rows common to every set of a routine, with its content
/// fingerprint precomputed for cache keying.
#[derive(Debug, Clone)]
pub struct BaseProblem {
    problem: Problem,
    fingerprint: Fingerprint,
}

impl BaseProblem {
    /// Wraps a problem as a shared base, computing its fingerprint.
    pub fn new(problem: Problem) -> BaseProblem {
        let fingerprint = fingerprint(&problem);
        BaseProblem { problem, fingerprint }
    }

    /// The base problem itself (also the cover relaxation of every set that
    /// extends it: the base's feasible region contains each composed set's).
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// Content fingerprint of the base (the first half of the pool's
    /// `(base, delta)` cache key).
    pub fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }

    /// Content fingerprint of a delta relative to this base (the second
    /// half of the cache key). Positional in the base's variable order.
    pub fn delta_fingerprint(&self, delta: &DeltaSet) -> Fingerprint {
        delta_rows_fingerprint(&delta.rows, self.problem.num_vars())
    }

    /// Recomposes the full monolithic problem: the base rows followed by
    /// the delta rows, in order. Audit certification and cold solves always
    /// run against this composed problem.
    pub fn compose(&self, delta: &DeltaSet) -> Problem {
        let mut full = self.problem.clone();
        full.constraints.extend(delta.rows.iter().cloned());
        full
    }

    /// Solves the base LP relaxation once and snapshots the optimal basis.
    /// Returns `None` when the base is not warm-startable (not optimal, or
    /// non-finite data); callers then solve every delta cold.
    ///
    /// Under a non-dense backend the base is presolved and solved with the
    /// sparse revised simplex; the snapshot then carries the reduction map
    /// plus the factorized sparse basis, and warm starts re-optimize in the
    /// reduced space. Any decline (non-integral data, fully-forced base,
    /// singular basis) or sparse numerical failure falls back to the dense
    /// tableau snapshot, so `--solver dense` behaviour is a strict subset.
    ///
    /// Pivots are charged to `meter` and reported under `lp.ticks`;
    /// `lp.warm.base_solves` counts the snapshot.
    pub fn solve_base(&self, meter: &BudgetMeter) -> Option<BaseSolution> {
        if self.problem.has_non_finite() {
            return None;
        }
        // A cancelled meter declines the base solve outright: its jobs fall
        // cold, where the budget checkpoints degrade them promptly.
        if meter.cancel_token().is_cancelled() {
            return None;
        }
        if solver_backend() != SolverBackend::Dense {
            if let Some((red, mut inst)) = self.presolve_sparse_base() {
                let cap = inst.default_iter_cap();
                let mut pivots = 0u64;
                let end = inst.solve_primal(cap, &mut pivots);
                meter.charge_ticks(pivots);
                ipet_trace::counter("lp.ticks", pivots);
                if end == SparseEnd::Optimal {
                    ipet_trace::counter("lp.warm.base_solves", 1);
                    ipet_trace::counter("lp.sparse.base_solves", 1);
                    return Some(BaseSolution { kind: BaseKind::Sparse { red, inst }, pivots });
                }
                // Numerical trouble in the sparse solve: fall through to the
                // dense snapshot rather than condemning every delta to cold.
            }
        }
        let mut inst = build_instance(&self.problem);
        let cap = inst.default_iter_cap();
        let mut pivots = 0u64;
        let end = inst.solve_primal(cap, &mut pivots);
        meter.charge_ticks(pivots);
        ipet_trace::counter("lp.warm.base_solves", 1);
        ipet_trace::counter("lp.ticks", pivots);
        match end {
            PrimalEnd::Optimal => Some(BaseSolution { kind: BaseKind::Dense(inst), pivots }),
            _ => None,
        }
    }

    /// Presolve the base and build the sparse instance of the reduction.
    /// `None` declines to the dense path.
    fn presolve_sparse_base(&self) -> Option<(Reduced, SparseInstance)> {
        if !self.problem.integer.iter().all(|&b| b) {
            return None;
        }
        let ip = IntProblem::from_problem(&self.problem)?;
        let red = presolve(&ip)?;
        if red.n_free == 0 {
            // Fully forced base: deltas degenerate; let the per-solve fast
            // path (or the dense snapshot) handle it.
            return None;
        }
        let rp = red.to_shifted_problem()?;
        let inst = SparseInstance::build(&rp)?;
        Some((red, inst))
    }
}

/// A snapshot of the base problem's optimal simplex tableau, reusable
/// across every delta of the base (and across α-identical bases). Opaque;
/// produced by [`BaseProblem::solve_base`].
#[derive(Clone)]
pub struct BaseSolution {
    kind: BaseKind,
    pivots: u64,
}

/// Which solver produced (and can re-optimize) the base snapshot.
// The variant sizes differ, but only a handful of snapshots exist per run
// (one per routine base) while warm re-solves touch them constantly —
// boxing would buy nothing and cost an indirection on every access.
#[allow(clippy::large_enum_variant)]
#[derive(Clone)]
enum BaseKind {
    /// Dense optimal tableau of the base problem itself.
    Dense(SimplexInstance),
    /// Presolve reduction of the base plus the factorized sparse optimum of
    /// the reduced problem; warm starts map delta rows through `red`.
    Sparse { red: Reduced, inst: SparseInstance },
}

impl BaseSolution {
    /// Pivots the base solve spent — the work a warm start amortizes.
    pub fn pivots(&self) -> u64 {
        self.pivots
    }
}

/// True when `budget` permits warm starting (see the module docs: warm
/// starts are a pure optimization for unconstrained solves and must never
/// change which results degrade under a budget).
pub fn warm_eligible(budget: &SolveBudget) -> bool {
    budget.deadline_ticks.is_none() && budget.max_lp_iters.is_none() && budget.max_nodes >= 1
}

#[cfg(debug_assertions)]
thread_local! {
    static FORCE_SHADOW_MISMATCH: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Test-only mutation hook: forces the next accepted warm result to
/// disagree with its cold shadow solve, proving the `debug_assertions`
/// equivalence check actually fires. Debug builds only.
#[cfg(debug_assertions)]
#[doc(hidden)]
pub fn debug_force_warm_mismatch(on: bool) {
    FORCE_SHADOW_MISMATCH.with(|f| f.set(on));
}

/// Solves `base + delta`, warm-starting from `solution` when possible and
/// falling back to a cold [`solve_ilp_budgeted`] on the composed problem
/// otherwise. This is the one solve entry point shared by the serial
/// executor and the pool workers, so both produce identical results by
/// construction.
///
/// Fault injection (`faults.armed()`) always routes cold: injected fault
/// indices count cold-path LP calls and node expansions, and the warm path
/// must not shift them.
pub fn solve_delta_warm(
    base: &BaseProblem,
    solution: Option<&BaseSolution>,
    delta: &DeltaSet,
    budget: &SolveBudget,
    meter: &BudgetMeter,
    faults: &mut SolverFaults,
    certify: CertifyFn,
) -> (IlpResolution, IlpStats) {
    let full = base.compose(delta);
    // A cancelled meter skips the warm attempt: warm work is work too, and
    // the cold path below degrades at its first budget checkpoint.
    let cancelled = meter.cancel_token().is_cancelled();
    if warm_eligible(budget) && !faults.armed() && !cancelled {
        match solution.and_then(|sol| warm_attempt(sol, delta, &full, meter, certify)) {
            Some(hit) => return hit,
            None => ipet_trace::counter("lp.warm.misses", 1),
        }
    }
    solve_ilp_budgeted(&full, budget, meter, faults)
}

/// The warm path proper. Returns `None` (a miss) whenever the result is not
/// provably identical to the cold solve's.
fn warm_attempt(
    solution: &BaseSolution,
    delta: &DeltaSet,
    full: &Problem,
    meter: &BudgetMeter,
    certify: CertifyFn,
) -> Option<(IlpResolution, IlpStats)> {
    // The acceptance argument needs a pure ILP: every variable integral.
    if full.has_non_finite() || !full.integer.iter().all(|&b| b) {
        return None;
    }
    match &solution.kind {
        BaseKind::Dense(inst) => {
            warm_attempt_dense(inst, solution.pivots, delta, full, meter, certify)
        }
        BaseKind::Sparse { red, inst } => {
            warm_attempt_sparse(red, inst, solution.pivots, delta, full, meter, certify)
        }
    }
}

/// Dense warm arm: append delta rows to the snapshot tableau and dual
/// re-optimize, exactly as before the sparse backend existed.
fn warm_attempt_dense(
    base_inst: &SimplexInstance,
    base_pivots: u64,
    delta: &DeltaSet,
    full: &Problem,
    meter: &BudgetMeter,
    certify: CertifyFn,
) -> Option<(IlpResolution, IlpStats)> {
    let n = full.num_vars();

    // Delta rows in `<=` form over the structural variables: `>=` rows are
    // negated, `=` rows split into a `<=`/`>=` pair.
    let mut le_rows: Vec<(Vec<f64>, f64)> = Vec::with_capacity(delta.rows.len());
    for row in &delta.rows {
        let dense = row.dense(n);
        match row.relation {
            Relation::Le => le_rows.push((dense, row.rhs)),
            Relation::Ge => le_rows.push((dense.iter().map(|&c| -c).collect(), -row.rhs)),
            Relation::Eq => {
                le_rows.push((dense.iter().map(|&c| -c).collect(), -row.rhs));
                le_rows.push((dense, row.rhs));
            }
        }
    }

    let mut inst = base_inst.clone();
    inst.append_le_rows(&le_rows);
    let cap = inst.default_iter_cap();
    let mut warm_pivots = 0u64;
    match inst.dual_reoptimize(cap, &mut warm_pivots) {
        DualEnd::Optimal => {}
        // Dual infeasibility proves LP infeasibility, but only in floating
        // point: there is no witness to certify exactly, so the verdict is
        // not accepted — the cold path re-derives it from phase 1.
        DualEnd::Infeasible | DualEnd::IterLimit | DualEnd::Numerical => {
            meter.charge_ticks(warm_pivots);
            return None;
        }
    }

    let x = inst.extract_x();
    let value = full.objective_value(&x);
    if !value.is_finite() || x.iter().any(|v| !v.is_finite()) {
        meter.charge_ticks(warm_pivots);
        return None;
    }
    // Integral, unique, exactly certified — or no deal.
    let accepted = (|| {
        let ints = round_witness(&x).ok()?;
        if !inst.optimum_is_unique() {
            return None;
        }
        let claimed = round_claimed(value).ok()?;
        let snapped: Vec<f64> = ints.iter().map(|&v| v as f64).collect();
        if !certify(full, &snapped, claimed) {
            return None;
        }
        Some((snapped, claimed))
    })();
    meter.charge_ticks(warm_pivots);
    let (snapped, claimed) = accepted?;

    // The canonical result the cold path would produce: the unique optimum
    // is integral, so cold's root relaxation is already integral and it
    // returns after one LP call and one node.
    let resolution = IlpResolution::Exact { x: snapped, value: claimed as f64 };
    let stats = IlpStats { lp_calls: 1, nodes: 1, first_relaxation_integral: true };
    meter.add_lp_call();
    meter.add_node();

    debug_shadow_check(full, &resolution, stats);

    ipet_trace::counter("lp.warm.hits", 1);
    ipet_trace::counter("lp.warm.pivots_saved", base_pivots.saturating_sub(warm_pivots));
    // Mirror the cold path's per-solve telemetry so warm and cold runs
    // differ only in the `lp.warm.*` and tick counters.
    ipet_trace::counter("lp.ilp.solves", 1);
    ipet_trace::counter("lp.lp_calls", stats.lp_calls as u64);
    ipet_trace::counter("lp.bb_nodes", stats.nodes as u64);
    ipet_trace::counter("lp.ticks", warm_pivots);
    ipet_trace::counter("lp.outcome.exact", 1);
    ipet_trace::gauge_max("lp.problem.vars.peak", full.num_vars() as u64);
    ipet_trace::gauge_max("lp.problem.rows.peak", full.constraints.len() as u64);

    Some((resolution, stats))
}

/// Sparse warm arm: map each delta row through the base's presolve
/// reduction (fixed variables substituted in exact arithmetic), append the
/// mapped rows to the factorized sparse basis — the append refactorizes,
/// i.e. re-snapshots the basis — and dual re-optimize in the reduced space.
/// The acceptance gate is the dense arm's, with one extra step: the reduced
/// witness is postsolved back to a full witness before certification, so the
/// certificate and the canonical `Exact` resolution are over the composed
/// problem, never the reduction.
fn warm_attempt_sparse(
    red: &Reduced,
    base_inst: &SparseInstance,
    base_pivots: u64,
    delta: &DeltaSet,
    full: &Problem,
    meter: &BudgetMeter,
    certify: CertifyFn,
) -> Option<(IlpResolution, IlpStats)> {
    // Delta rows in exact integer form, mapped into the reduced space, then
    // `<=` form over the free variables (`>=` negated, `=` split in the same
    // order as the dense arm).
    let mut le_rows: Vec<(Vec<f64>, f64)> = Vec::with_capacity(delta.rows.len());
    for row in &delta.rows {
        let int_row = IntRow::from_constraint(row)?;
        let mapped = match red.map_row(&int_row)? {
            MappedRow::Satisfied => continue,
            // A delta row contradicting the presolved fixings proves the
            // composed problem infeasible — but only in the reduction's
            // algebra, with no witness to certify, so the verdict belongs
            // to the cold path.
            MappedRow::Violated => return None,
            MappedRow::Row(r) => r,
        };
        let mut dense = vec![0.0; red.n_free];
        for &(j, a) in &mapped.terms {
            dense[j] = a as f64;
        }
        // The base instance lives in the shifted space (`x = lo + x'`), so
        // the mapped row's right-hand side shifts with it.
        let rhs = red.shift_rhs(&mapped.terms, mapped.rhs)? as f64;
        match mapped.rel {
            Relation::Le => le_rows.push((dense, rhs)),
            Relation::Ge => le_rows.push((dense.iter().map(|&c| -c).collect(), -rhs)),
            Relation::Eq => {
                le_rows.push((dense.iter().map(|&c| -c).collect(), -rhs));
                le_rows.push((dense, rhs));
            }
        }
    }

    let mut inst = base_inst.clone();
    if !inst.append_le_rows(&le_rows) {
        return None;
    }
    let cap = inst.default_iter_cap();
    let mut warm_pivots = 0u64;
    match inst.dual_reoptimize(cap, &mut warm_pivots) {
        SparseDualEnd::Optimal => {}
        SparseDualEnd::Infeasible | SparseDualEnd::IterLimit | SparseDualEnd::Numerical => {
            meter.charge_ticks(warm_pivots);
            return None;
        }
    }

    // Integral, unique, postsolved, exactly certified — or no deal.
    let x = inst.extract_x();
    let accepted = (|| {
        let ints = round_witness(&x).ok()?;
        if !inst.optimum_is_unique() {
            return None;
        }
        let ints = red.unshift_witness(&ints)?;
        let full_ints = red.postsolve_witness(&ints)?;
        let snapped: Vec<f64> = full_ints.iter().map(|&v| v as f64).collect();
        let value = full.objective_value(&snapped);
        let claimed = round_claimed(value).ok()?;
        if !certify(full, &snapped, claimed) {
            return None;
        }
        Some((snapped, claimed))
    })();
    meter.charge_ticks(warm_pivots);
    let (snapped, claimed) = accepted?;

    // Canonical cold result, by the same uniqueness argument as the dense
    // arm — presolve reductions preserve the LP feasible set, so a unique
    // integral reduced optimum is *the* composed optimum.
    let resolution = IlpResolution::Exact { x: snapped, value: claimed as f64 };
    let stats = IlpStats { lp_calls: 1, nodes: 1, first_relaxation_integral: true };
    meter.add_lp_call();
    meter.add_node();

    debug_shadow_check(full, &resolution, stats);

    ipet_trace::counter("lp.warm.hits", 1);
    ipet_trace::counter("lp.warm.pivots_saved", base_pivots.saturating_sub(warm_pivots));
    ipet_trace::counter("lp.sparse.warm_reopts", 1);
    // Mirror the cold path's per-solve telemetry so warm and cold runs
    // differ only in the `lp.warm.*`/`lp.sparse.*` and tick counters.
    ipet_trace::counter("lp.ilp.solves", 1);
    ipet_trace::counter("lp.lp_calls", stats.lp_calls as u64);
    ipet_trace::counter("lp.bb_nodes", stats.nodes as u64);
    ipet_trace::counter("lp.ticks", warm_pivots);
    ipet_trace::counter("lp.outcome.exact", 1);
    ipet_trace::gauge_max("lp.problem.vars.peak", full.num_vars() as u64);
    ipet_trace::gauge_max("lp.problem.rows.peak", full.constraints.len() as u64);

    Some((resolution, stats))
}

/// Debug builds shadow-solve every accepted warm result cold (fresh meter,
/// no faults, dense-only — routing the shadow through the fast path would
/// recurse and would not be an independent check) and assert bit-identical
/// resolutions and statistics. Release builds skip this; CI's warm-vs-cold
/// counter diff covers them.
#[cfg(debug_assertions)]
fn debug_shadow_check(full: &Problem, warm: &IlpResolution, warm_stats: IlpStats) {
    let mut warm = warm.clone();
    if FORCE_SHADOW_MISMATCH.with(|f| f.get()) {
        if let IlpResolution::Exact { value, .. } = &mut warm {
            *value += 1.0;
        }
    }
    let (cold, cold_stats) = crate::ilp::solve_ilp_cold_dense(full);
    assert_eq!(
        warm, cold,
        "warm-started resolution diverged from the cold solve (warm-start soundness bug)"
    );
    assert_eq!(
        warm_stats, cold_stats,
        "warm-started statistics diverged from the cold solve (warm-start soundness bug)"
    );
}

#[cfg(not(debug_assertions))]
fn debug_shadow_check(_full: &Problem, _warm: &IlpResolution, _warm_stats: IlpStats) {}

/// Per-(routine, sense) incremental solver for serial executors: solves the
/// base LP lazily on the first warm-eligible delta, snapshots it, and
/// warm-starts every subsequent delta of the same base.
pub struct IncrementalSolver<'a> {
    base: &'a BaseProblem,
    /// `None` until the first eligible solve; then the snapshot (or `None`
    /// inside when the base LP was not warm-startable).
    solution: Option<Option<BaseSolution>>,
}

impl<'a> IncrementalSolver<'a> {
    /// A solver for deltas of `base`; nothing is solved yet.
    pub fn new(base: &'a BaseProblem) -> IncrementalSolver<'a> {
        IncrementalSolver { base, solution: None }
    }

    /// Solves `base + delta`: warm when possible, cold otherwise. See
    /// [`solve_delta_warm`].
    pub fn solve(
        &mut self,
        delta: &DeltaSet,
        budget: &SolveBudget,
        meter: &BudgetMeter,
        faults: &mut SolverFaults,
        certify: CertifyFn,
    ) -> (IlpResolution, IlpStats) {
        let solution = if warm_eligible(budget) && !faults.armed() {
            self.solution.get_or_insert_with(|| self.base.solve_base(meter)).as_ref()
        } else {
            None
        };
        solve_delta_warm(self.base, solution, delta, budget, meter, faults, certify)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ProblemBuilder, Relation, Sense, VarId};

    /// A base with an all-integer unique optimum: max 3x + 2y
    /// st x <= 4, y <= 6, x + y <= 8.
    fn toy_base() -> BaseProblem {
        let mut b = ProblemBuilder::new(Sense::Maximize);
        let x = b.add_var("x", true);
        let y = b.add_var("y", true);
        b.objective(x, 3.0);
        b.objective(y, 2.0);
        b.constraint(vec![(x, 1.0)], Relation::Le, 4.0);
        b.constraint(vec![(y, 1.0)], Relation::Le, 6.0);
        b.constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 8.0);
        BaseProblem::new(b.build())
    }

    fn feasibility_certify(problem: &Problem, x: &[f64], claimed: i64) -> bool {
        problem.is_feasible(x, 1e-6) && (problem.objective_value(x) - claimed as f64).abs() < 1e-6
    }

    fn solve_both(delta: DeltaSet) -> ((IlpResolution, IlpStats), (IlpResolution, IlpStats)) {
        let base = toy_base();
        let meter = BudgetMeter::new();
        let sol = base.solve_base(&meter).expect("base solves");
        let warm = solve_delta_warm(
            &base,
            Some(&sol),
            &delta,
            &SolveBudget::unlimited(),
            &meter,
            &mut SolverFaults::none(),
            &feasibility_certify,
        );
        let cold = solve_ilp_budgeted(
            &base.compose(&delta),
            &SolveBudget::unlimited(),
            &BudgetMeter::new(),
            &mut SolverFaults::none(),
        );
        (warm, cold)
    }

    type RowSpec = (Vec<(usize, f64)>, Relation, f64);

    fn delta(rows: Vec<RowSpec>) -> DeltaSet {
        DeltaSet::new(
            rows.into_iter()
                .map(|(terms, relation, rhs)| Constraint {
                    terms: terms.into_iter().map(|(v, c)| (VarId(v), c)).collect(),
                    relation,
                    rhs,
                })
                .collect(),
        )
    }

    #[test]
    fn warm_hit_is_bit_identical_to_cold() {
        // Delta x <= 2 moves the optimum to (2, 6): unique and integral.
        let (warm, cold) = solve_both(delta(vec![(vec![(0, 1.0)], Relation::Le, 2.0)]));
        assert_eq!(warm, cold);
        assert_eq!(warm.1, IlpStats { lp_calls: 1, nodes: 1, first_relaxation_integral: true });
        match warm.0 {
            IlpResolution::Exact { ref x, value } => {
                assert_eq!(x, &vec![2.0, 6.0]);
                assert_eq!(value, 18.0);
            }
            ref other => panic!("{other:?}"),
        }
    }

    #[test]
    fn equality_and_ge_deltas_round_trip() {
        let (warm, cold) = solve_both(delta(vec![
            (vec![(0, 1.0)], Relation::Eq, 1.0),
            (vec![(1, 1.0)], Relation::Ge, 3.0),
        ]));
        assert_eq!(warm, cold);
        assert!(matches!(warm.0, IlpResolution::Exact { .. }));
    }

    #[test]
    fn infeasible_delta_falls_back_cold() {
        // x >= 9 contradicts x <= 4: the dual proves it but cannot certify
        // it, so the cold path must be the one reporting Infeasible.
        let (warm, cold) = solve_both(delta(vec![(vec![(0, 1.0)], Relation::Ge, 9.0)]));
        assert_eq!(warm.0, IlpResolution::Infeasible);
        assert_eq!(warm, cold);
    }

    #[test]
    fn fractional_delta_falls_back_cold() {
        // 2x <= 5 makes the relaxation stop at x = 2.5: branching needed,
        // warm must miss and the results still agree.
        let (warm, cold) = solve_both(delta(vec![(vec![(0, 2.0)], Relation::Le, 5.0)]));
        assert_eq!(warm, cold);
        match warm.0 {
            IlpResolution::Exact { value, .. } => assert_eq!(value, 18.0),
            ref other => panic!("{other:?}"),
        }
        assert!(warm.1.lp_calls > 1, "fractional root must have branched");
    }

    #[test]
    fn certification_veto_falls_back_cold() {
        let base = toy_base();
        let meter = BudgetMeter::new();
        let sol = base.solve_base(&meter).expect("base solves");
        let d = delta(vec![(vec![(0, 1.0)], Relation::Le, 2.0)]);
        let veto: CertifyFn = &|_, _, _| false;
        let warm = solve_delta_warm(
            &base,
            Some(&sol),
            &d,
            &SolveBudget::unlimited(),
            &meter,
            &mut SolverFaults::none(),
            veto,
        );
        let cold = solve_ilp_budgeted(
            &base.compose(&d),
            &SolveBudget::unlimited(),
            &BudgetMeter::new(),
            &mut SolverFaults::none(),
        );
        assert_eq!(warm, cold, "vetoed warm result must equal the cold solve");
    }

    #[test]
    fn budgeted_solves_never_warm_start() {
        assert!(warm_eligible(&SolveBudget::unlimited()));
        assert!(!warm_eligible(&SolveBudget::with_deadline(1_000)));
        assert!(!warm_eligible(&SolveBudget {
            max_lp_iters: Some(10),
            ..SolveBudget::unlimited()
        }));
        assert!(!warm_eligible(&SolveBudget { max_nodes: 0, ..SolveBudget::unlimited() }));
    }

    #[test]
    fn incremental_solver_reuses_one_base_solve() {
        let base = toy_base();
        let meter = BudgetMeter::new();
        let mut solver = IncrementalSolver::new(&base);
        let budget = SolveBudget::unlimited();
        let deltas = [
            delta(vec![(vec![(0, 1.0)], Relation::Le, 2.0)]),
            delta(vec![(vec![(0, 1.0)], Relation::Le, 3.0)]),
            delta(vec![(vec![(1, 1.0)], Relation::Le, 1.0)]),
        ];
        for d in &deltas {
            let (warm, _) =
                solver.solve(d, &budget, &meter, &mut SolverFaults::none(), &feasibility_certify);
            let (cold, _) = solve_ilp_budgeted(
                &base.compose(d),
                &SolveBudget::unlimited(),
                &BudgetMeter::new(),
                &mut SolverFaults::none(),
            );
            assert_eq!(warm, cold);
        }
    }

    #[test]
    fn armed_faults_route_cold() {
        // An injected fault at LP call 0 must fire exactly like the cold
        // path: the warm layer steps aside entirely when faults are armed.
        let base = toy_base();
        let meter = BudgetMeter::new();
        let sol = base.solve_base(&meter);
        let d = delta(vec![(vec![(0, 1.0)], Relation::Le, 2.0)]);
        let mut faults = SolverFaults::numerical_at(0);
        let (res, _) = solve_delta_warm(
            &base,
            sol.as_ref(),
            &d,
            &SolveBudget::unlimited(),
            &meter,
            &mut faults,
            &feasibility_certify,
        );
        assert_eq!(res, IlpResolution::Numerical);
    }

    #[test]
    fn delta_fingerprints_discriminate_rows() {
        let base = toy_base();
        let a = delta(vec![(vec![(0, 1.0)], Relation::Le, 2.0)]);
        let b = delta(vec![(vec![(0, 1.0)], Relation::Le, 3.0)]);
        assert_eq!(base.delta_fingerprint(&a), base.delta_fingerprint(&a));
        assert_ne!(base.delta_fingerprint(&a), base.delta_fingerprint(&b));
        assert_ne!(base.delta_fingerprint(&a), base.delta_fingerprint(&DeltaSet::default()));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "warm-start soundness bug")]
    fn shadow_check_catches_mutated_warm_results() {
        // Mutation test for the debug shadow solve: force the accepted warm
        // value to disagree with the cold shadow and require the panic.
        debug_force_warm_mismatch(true);
        struct Reset;
        impl Drop for Reset {
            fn drop(&mut self) {
                debug_force_warm_mismatch(false);
            }
        }
        let _reset = Reset;
        let _ = solve_both(delta(vec![(vec![(0, 1.0)], Relation::Le, 2.0)]));
    }
}
