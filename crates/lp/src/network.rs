//! Network-simplex backend for pure flow-conservation problems.
//!
//! The paper's structural constraints are flow conservation over the CFG, so
//! after presolve has absorbed singleton rows into variable bounds, the
//! surviving matrix is frequently a (signed) node-arc incidence matrix. The
//! detector below runs the Heller–Tompkins test: every entry must be `±1`,
//! every column must have at most two entries, and the rows must 2-color so
//! that a column's two entries get opposite signs after negating one color
//! class. Negating that class turns each column into one `+1` and one `-1` —
//! an arc between two row-nodes — and a phantom *root* node absorbs columns
//! with a single entry plus the `<=`/`>=` slacks.
//!
//! The resulting min-cost-flow problem is solved by a primal network simplex
//! on a spanning-tree basis in **exact integer arithmetic** (`i64` flows,
//! `i128` potentials): Dantzig pricing with smallest-arc-index ties,
//! switching to Bland's rule after a stall, and an all-artificial starting
//! tree driven by a lexicographic (artificial-flow, real-cost) objective —
//! a single combined phase instead of the classic two. Because the arithmetic is exact, the
//! optimality and uniqueness certificates here are proofs, not float
//! judgements; the caller still routes the witness through the shared
//! rounding and exact certification before accepting.

use crate::model::{Relation, Sense};
use crate::presolve::Reduced;

/// Consecutive degenerate pivots before switching to Bland's rule.
const STALL_THRESHOLD: u32 = 12;

/// Outcome of attempting the network route.
#[derive(Debug, Clone)]
pub(crate) enum NetEnd {
    /// The reduced matrix is not a signed incidence matrix; nothing was run.
    Declined,
    /// Solved to a provably unique integral optimum.
    Solved { x: Vec<i64>, pivots: u64 },
    /// Routed but could not certify (infeasible, unbounded, non-unique,
    /// overflow or iteration limit). `pivots` is the work spent.
    Miss { pivots: u64 },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ArcKind {
    /// Structural variable with this reduced index.
    Var(usize),
    /// Row slack for a `<=`/`>=` row.
    Slack,
    /// Phase-1 artificial, pinned to zero afterwards.
    Artificial,
}

#[derive(Debug, Clone)]
struct Arc {
    head: usize,
    tail: usize,
    lo: i64,
    ub: Option<i64>,
    cost: i64,
    kind: ArcKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Tree,
    AtLo,
    AtUb,
}

/// Union-find with parity for the Heller–Tompkins row 2-coloring.
struct ParityUf {
    parent: Vec<usize>,
    /// Parity of the path to the representative.
    parity: Vec<u8>,
}

impl ParityUf {
    fn new(n: usize) -> ParityUf {
        ParityUf { parent: (0..n).collect(), parity: vec![0; n] }
    }

    fn find(&mut self, x: usize) -> (usize, u8) {
        if self.parent[x] == x {
            return (x, 0);
        }
        let (root, p) = self.find(self.parent[x]);
        self.parent[x] = root;
        self.parity[x] ^= p;
        (root, self.parity[x])
    }

    /// Demand `color(a) ^ color(b) == want`; false on contradiction.
    fn union(&mut self, a: usize, b: usize, want: u8) -> bool {
        let (ra, pa) = self.find(a);
        let (rb, pb) = self.find(b);
        if ra == rb {
            return pa ^ pb == want;
        }
        self.parent[ra] = rb;
        self.parity[ra] = pa ^ pb ^ want;
        true
    }
}

/// 2-color the rows so that after negating color-1 rows every column has at
/// most one `+1` and one `-1`. `None` when the matrix is not network-shaped.
fn color_rows(red: &Reduced) -> Option<Vec<u8>> {
    let m = red.rows.len();
    // Per free variable: (row, sign) entries.
    let mut col_entries: Vec<Vec<(usize, i64)>> = vec![Vec::new(); red.n_free];
    for (i, row) in red.rows.iter().enumerate() {
        for &(var, coeff) in &row.terms {
            if coeff != 1 && coeff != -1 {
                return None;
            }
            col_entries[var].push((i, coeff));
        }
    }
    let mut uf = ParityUf::new(m);
    for entries in &col_entries {
        match entries.len() {
            0 => return None, // a var outside every row has no arc to carry it
            1 => {}
            2 => {
                let (r0, s0) = entries[0];
                let (r1, s1) = entries[1];
                // Same sign -> rows must land in different color classes so
                // one gets negated; opposite sign -> same class.
                let want = if s0 == s1 { 1 } else { 0 };
                if !uf.union(r0, r1, want) {
                    return None;
                }
            }
            _ => return None,
        }
    }
    let mut colors = vec![0u8; m];
    for (i, c) in colors.iter_mut().enumerate() {
        *c = uf.find(i).1;
    }
    Some(colors)
}

struct Network {
    /// Row-nodes `0..m` plus the root node `m`.
    num_nodes: usize,
    root: usize,
    arcs: Vec<Arc>,
    /// Node supplies (`b` of each row after color negation; root balances).
    supply: Vec<i64>,
}

/// Build the min-cost-flow instance, folding the sense so the simplex always
/// minimizes. Returns `None` on overflow.
fn build_network(red: &Reduced, colors: &[u8]) -> Option<Network> {
    let m = red.rows.len();
    let root = m;
    let mut arcs = Vec::with_capacity(red.n_free + m);
    // Entries per variable after color negation.
    let mut heads: Vec<Option<usize>> = vec![None; red.n_free];
    let mut tails: Vec<Option<usize>> = vec![None; red.n_free];
    let mut supply: Vec<i64> = vec![0; m + 1];
    for (i, row) in red.rows.iter().enumerate() {
        let neg = colors[i] == 1;
        for &(var, coeff) in &row.terms {
            let s = if neg { -coeff } else { coeff };
            if s == 1 {
                if heads[var].is_some() {
                    return None;
                }
                heads[var] = Some(i);
            } else {
                if tails[var].is_some() {
                    return None;
                }
                tails[var] = Some(i);
            }
        }
        supply[i] = if neg { row.rhs.checked_neg()? } else { row.rhs };
    }
    for v in 0..red.n_free {
        let cost = match red.sense {
            Sense::Maximize => red.obj[v].checked_neg()?,
            Sense::Minimize => red.obj[v],
        };
        arcs.push(Arc {
            head: heads[v].unwrap_or(root),
            tail: tails[v].unwrap_or(root),
            lo: red.lo[v],
            ub: red.ub[v],
            cost,
            kind: ArcKind::Var(v),
        });
    }
    // Slacks: a `<=` row (after negation) reads Σ ±x + s = b with s >= 0
    // entering the row node; `>=` rows get a leaving surplus.
    for (i, row) in red.rows.iter().enumerate() {
        let neg = colors[i] == 1;
        let rel = if neg {
            match row.rel {
                Relation::Le => Relation::Ge,
                Relation::Ge => Relation::Le,
                Relation::Eq => Relation::Eq,
            }
        } else {
            row.rel
        };
        match rel {
            Relation::Le => arcs.push(Arc {
                head: i,
                tail: root,
                lo: 0,
                ub: None,
                cost: 0,
                kind: ArcKind::Slack,
            }),
            Relation::Ge => arcs.push(Arc {
                head: root,
                tail: i,
                lo: 0,
                ub: None,
                cost: 0,
                kind: ArcKind::Slack,
            }),
            Relation::Eq => {}
        }
    }
    // The root absorbs the total imbalance: column sums are zero, so the sum
    // of all node supplies must be zero too.
    let mut total: i64 = 0;
    for &s in supply.iter().take(m) {
        total = total.checked_add(s)?;
    }
    supply[root] = total.checked_neg()?;
    Some(Network { num_nodes: m + 1, root, arcs, supply })
}

struct Simplex {
    net: Network,
    flow: Vec<i64>,
    status: Vec<Status>,
    parent: Vec<usize>,
    parent_arc: Vec<usize>,
    depth: Vec<usize>,
    pot: Vec<(i128, i128)>,
    cost: Vec<(i64, i64)>,
    pivots: u64,
}

enum Step {
    Optimal,
    Pivoted { degenerate: bool },
    Unbounded,
    Broken,
}

impl Simplex {
    /// Starting tree: every real arc rests at its lower bound; each
    /// row-node's residual rides its own slack arc when the slack happens to
    /// point the right way (those nodes cost no artificial at all), and an
    /// artificial carries it to the root otherwise.
    fn new(net: Network) -> Option<Simplex> {
        let n_real = net.arcs.len();
        let num_nodes = net.num_nodes;
        let root = net.root;
        let mut net = net;
        let mut flow = Vec::with_capacity(n_real + num_nodes - 1);
        let mut status = Vec::with_capacity(n_real + num_nodes - 1);
        let mut residual: Vec<i64> = net.supply.clone();
        // At most one slack arc per row-node, by construction.
        let mut slack_of: Vec<Option<usize>> = vec![None; num_nodes];
        for (j, arc) in net.arcs.iter().enumerate() {
            let f = arc.lo;
            residual[arc.head] = residual[arc.head].checked_sub(f)?;
            residual[arc.tail] = residual[arc.tail].checked_add(f)?;
            flow.push(f);
            status.push(Status::AtLo);
            if arc.kind == ArcKind::Slack {
                let node = if arc.head == root { arc.tail } else { arc.head };
                slack_of[node] = Some(j);
            }
        }
        for node in 0..num_nodes {
            if node == root {
                continue;
            }
            let r = residual[node];
            let (head, tail, f) =
                if r >= 0 { (node, root, r) } else { (root, node, r.checked_neg()?) };
            if let Some(sj) = slack_of[node] {
                // Unbounded, zero-cost, and pointing the right way: the
                // slack is a legal tree arc carrying the residual itself.
                let sa = &net.arcs[sj];
                if sa.head == head && sa.tail == tail {
                    flow[sj] = f;
                    status[sj] = Status::Tree;
                    continue;
                }
                if f == 0 {
                    // Zero residual: direction is irrelevant, any spanning
                    // arc will do.
                    status[sj] = Status::Tree;
                    continue;
                }
            }
            net.arcs.push(Arc { head, tail, lo: 0, ub: None, cost: 0, kind: ArcKind::Artificial });
            flow.push(f);
            status.push(Status::Tree);
        }
        let cost = vec![(0, 0); net.arcs.len()];
        let mut s = Simplex {
            net,
            flow,
            status,
            parent: vec![usize::MAX; num_nodes],
            parent_arc: vec![usize::MAX; num_nodes],
            depth: vec![0; num_nodes],
            pot: vec![(0, 0); num_nodes],
            cost,
            pivots: 0,
        };
        if !s.rebuild_tree() {
            return None;
        }
        Some(s)
    }

    /// Lexicographic (artificial-flow, real-cost) objective: one combined
    /// drive replaces the classic phase-1/phase-2 split, so pivots that
    /// restore feasibility already break ties toward the real optimum.
    /// Exact in integers — no big-M magnitude to get wrong.
    fn set_costs_lex(&mut self) {
        for (j, arc) in self.net.arcs.iter().enumerate() {
            self.cost[j] = match arc.kind {
                ArcKind::Artificial => (1, 0),
                _ => (0, arc.cost),
            };
        }
    }

    /// Pure real costs for the final settle (artificials pinned to zero).
    fn set_costs_real(&mut self) {
        for (j, arc) in self.net.arcs.iter().enumerate() {
            self.cost[j] = match arc.kind {
                ArcKind::Artificial => (0, 0),
                _ => (0, arc.cost),
            };
        }
    }

    /// BFS from the root over tree arcs; recomputes parents, depths and
    /// potentials. False if the tree arcs do not span every node.
    fn rebuild_tree(&mut self) -> bool {
        let n = self.net.num_nodes;
        let root = self.net.root;
        let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n]; // (other, arc)
        for (j, arc) in self.net.arcs.iter().enumerate() {
            if self.status[j] == Status::Tree {
                adj[arc.head].push((arc.tail, j));
                adj[arc.tail].push((arc.head, j));
            }
        }
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        seen[root] = true;
        self.parent[root] = usize::MAX;
        self.parent_arc[root] = usize::MAX;
        self.depth[root] = 0;
        self.pot[root] = (0, 0);
        queue.push_back(root);
        let mut count = 1;
        while let Some(u) = queue.pop_front() {
            for &(v, j) in &adj[u] {
                if seen[v] {
                    continue;
                }
                seen[v] = true;
                count += 1;
                self.parent[v] = u;
                self.parent_arc[v] = j;
                self.depth[v] = self.depth[u] + 1;
                let arc = &self.net.arcs[j];
                // Reduced cost of a tree arc is zero (componentwise):
                // cost - pot[head] + pot[tail] == 0.
                let (c1, c2) = self.cost[j];
                let (p1, p2) = self.pot[u];
                self.pot[v] = if arc.head == v {
                    (p1 + c1 as i128, p2 + c2 as i128)
                } else {
                    (p1 - c1 as i128, p2 - c2 as i128)
                };
                queue.push_back(v);
            }
        }
        count == n
    }

    fn reduced_cost(&self, j: usize) -> (i128, i128) {
        let arc = &self.net.arcs[j];
        let (c1, c2) = self.cost[j];
        let (h1, h2) = self.pot[arc.head];
        let (t1, t2) = self.pot[arc.tail];
        (c1 as i128 - h1 + t1, c2 as i128 - h2 + t2)
    }

    /// Collect the cycle the entering arc closes: `(arc, sign)` where `sign`
    /// is the flow delta direction when pushing one unit along the entering
    /// arc's orientation.
    fn cycle_of(&self, entering: usize) -> Vec<(usize, i64)> {
        let arc = &self.net.arcs[entering];
        let mut out = Vec::new();
        let (mut a, mut b) = (arc.head, arc.tail);
        // Route flow from head back to tail through the tree.
        let mut up_head: Vec<(usize, i64)> = Vec::new(); // traversal child -> parent
        let mut up_tail: Vec<(usize, i64)> = Vec::new();
        while self.depth[a] > self.depth[b] {
            let j = self.parent_arc[a];
            let s = if self.net.arcs[j].tail == a { 1 } else { -1 };
            up_head.push((j, s));
            a = self.parent[a];
        }
        while self.depth[b] > self.depth[a] {
            let j = self.parent_arc[b];
            let s = if self.net.arcs[j].head == b { 1 } else { -1 };
            up_tail.push((j, s));
            b = self.parent[b];
        }
        while a != b {
            let j = self.parent_arc[a];
            let s = if self.net.arcs[j].tail == a { 1 } else { -1 };
            up_head.push((j, s));
            a = self.parent[a];
            let j = self.parent_arc[b];
            let s = if self.net.arcs[j].head == b { 1 } else { -1 };
            up_tail.push((j, s));
            b = self.parent[b];
        }
        out.extend(up_head);
        out.extend(up_tail);
        out
    }

    /// Largest step along the entering arc's cycle in direction `dir`
    /// (`+1` = increase entering flow, `-1` = decrease). Returns the step and
    /// the blocking arc, or `None` when unbounded.
    fn max_step(&self, entering: usize, dir: i64) -> Option<(i64, usize)> {
        let arc = &self.net.arcs[entering];
        let mut best: Option<(i64, usize)> = match (dir, arc.ub) {
            (1, Some(ub)) => Some((ub - self.flow[entering], entering)),
            (1, None) => None,
            _ => Some((self.flow[entering] - arc.lo, entering)),
        };
        for (j, s) in self.cycle_of(entering) {
            let delta = s * dir;
            let cap = if delta > 0 {
                match self.net.arcs[j].ub {
                    Some(ub) => ub - self.flow[j],
                    None => continue,
                }
            } else {
                self.flow[j] - self.net.arcs[j].lo
            };
            match best {
                Some((t, b)) if cap > t || (cap == t && j >= b) => {}
                _ => best = Some((cap, j)),
            }
        }
        best
    }

    /// One pricing + pivot step.
    fn step(&mut self, bland: bool) -> Step {
        let mut entering: Option<(usize, (i128, i128))> = None;
        for j in 0..self.net.arcs.len() {
            let violation = match self.status[j] {
                Status::Tree => continue,
                Status::AtLo => {
                    let rc = self.reduced_cost(j);
                    if rc < (0, 0) {
                        (-rc.0, -rc.1)
                    } else {
                        continue;
                    }
                }
                Status::AtUb => {
                    let rc = self.reduced_cost(j);
                    if rc > (0, 0) {
                        rc
                    } else {
                        continue;
                    }
                }
            };
            if bland {
                entering = Some((j, violation));
                break;
            }
            match entering {
                Some((_, best)) if violation <= best => {}
                _ => entering = Some((j, violation)),
            }
        }
        let Some((e, _)) = entering else {
            return Step::Optimal;
        };
        let dir: i64 = if self.status[e] == Status::AtLo { 1 } else { -1 };
        let Some((t, blocking)) = self.max_step(e, dir) else {
            return Step::Unbounded;
        };
        debug_assert!(t >= 0);
        // Apply the flow change.
        let Some(fe) = self.flow[e].checked_add(dir.checked_mul(t).unwrap_or(i64::MAX)) else {
            return Step::Broken;
        };
        self.flow[e] = fe;
        for (j, s) in self.cycle_of(e) {
            let delta = s * dir;
            let Some(f) = self.flow[j].checked_add(delta.saturating_mul(t)) else {
                return Step::Broken;
            };
            self.flow[j] = f;
        }
        if blocking == e {
            // Bound flip: the entering arc hits its opposite bound.
            self.pivots += 1;
            self.status[e] = if dir > 0 { Status::AtUb } else { Status::AtLo };
            return Step::Pivoted { degenerate: t == 0 };
        }
        let barc = &self.net.arcs[blocking];
        // A zero-step swap that only evacuates a zero-flow artificial from
        // the tree is basis repair, not priced simplex work — the sparse
        // backend's artificial-evacuation loop follows the same convention.
        if t != 0 || barc.kind != ArcKind::Artificial {
            self.pivots += 1;
        }
        let new_status = if self.flow[blocking] == barc.lo {
            Status::AtLo
        } else if barc.ub == Some(self.flow[blocking]) {
            Status::AtUb
        } else {
            return Step::Broken;
        };
        self.status[blocking] = new_status;
        self.status[e] = Status::Tree;
        if !self.rebuild_tree() {
            return Step::Broken;
        }
        Step::Pivoted { degenerate: t == 0 }
    }

    /// Run to optimality under the current costs.
    fn optimize(&mut self, max_iters: u64) -> Option<bool> {
        let mut iters = 0u64;
        let mut stalled = 0u32;
        loop {
            if iters >= max_iters {
                return None;
            }
            iters += 1;
            match self.step(stalled >= STALL_THRESHOLD) {
                Step::Optimal => return Some(true),
                Step::Unbounded | Step::Broken => return Some(false),
                Step::Pivoted { degenerate } => {
                    if degenerate {
                        stalled += 1;
                    } else {
                        stalled = 0;
                    }
                }
            }
        }
    }

    /// True when no alternate optimal *point* exists: every nonbasic arc with
    /// residual freedom and zero reduced cost admits only a zero step.
    fn optimum_is_unique(&self) -> bool {
        for j in 0..self.net.arcs.len() {
            if self.status[j] == Status::Tree {
                continue;
            }
            let arc = &self.net.arcs[j];
            if arc.ub == Some(arc.lo) {
                continue; // pinned (e.g. phase-2 artificials)
            }
            if self.reduced_cost(j) != (0, 0) {
                continue;
            }
            let dir: i64 = if self.status[j] == Status::AtLo { 1 } else { -1 };
            match self.max_step(j, dir) {
                None => return false,                  // zero-cost ray
                Some((t, _)) if t > 0 => return false, // genuine alternate vertex
                _ => {}
            }
        }
        true
    }
}

/// Attempt the network route on a presolved problem.
pub(crate) fn solve_network(red: &Reduced, max_iters: u64) -> NetEnd {
    if red.n_free == 0 || red.rows.is_empty() {
        return NetEnd::Declined;
    }
    let Some(colors) = color_rows(red) else {
        return NetEnd::Declined;
    };
    let Some(net) = build_network(red, &colors) else {
        return NetEnd::Declined;
    };
    let Some(mut s) = Simplex::new(net) else {
        return NetEnd::Declined;
    };
    // Lexicographic drive: feasibility first, real cost as the tiebreak.
    s.set_costs_lex();
    if !s.rebuild_tree() {
        return NetEnd::Miss { pivots: s.pivots };
    }
    match s.optimize(max_iters) {
        Some(true) => {}
        _ => return NetEnd::Miss { pivots: s.pivots },
    }
    let infeasible =
        s.net.arcs.iter().zip(&s.flow).any(|(arc, &f)| arc.kind == ArcKind::Artificial && f != 0);
    if infeasible {
        return NetEnd::Miss { pivots: s.pivots };
    }
    // Pin artificials and settle under pure real costs: the lex drive
    // already optimized the real component, so this usually takes zero
    // pivots but restores the exact potentials the uniqueness proof needs.
    for (j, arc) in s.net.arcs.iter_mut().enumerate() {
        if arc.kind == ArcKind::Artificial {
            arc.ub = Some(0);
            debug_assert_eq!(s.flow[j], 0);
        }
    }
    s.set_costs_real();
    if !s.rebuild_tree() {
        return NetEnd::Miss { pivots: s.pivots };
    }
    match s.optimize(max_iters.saturating_sub(s.pivots)) {
        Some(true) => {}
        _ => return NetEnd::Miss { pivots: s.pivots },
    }
    if !s.optimum_is_unique() {
        return NetEnd::Miss { pivots: s.pivots };
    }
    let mut x = vec![0i64; red.n_free];
    for (j, arc) in s.net.arcs.iter().enumerate() {
        if let ArcKind::Var(v) = arc.kind {
            x[v] = s.flow[j];
        }
    }
    NetEnd::Solved { x, pivots: s.pivots }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Constraint, ProblemBuilder, Relation, Sense};
    use crate::presolve::{presolve, IntProblem};
    use crate::simplex::{solve_lp, LpOutcome};

    fn reduce(p: &crate::model::Problem) -> Reduced {
        presolve(&IntProblem::from_problem(p).expect("exact")).expect("reduces")
    }

    #[test]
    fn routes_pure_flow_and_matches_dense() {
        // Diamond CFG: s -> a | b -> t, plus a bound on one side.
        let mut b = ProblemBuilder::new(Sense::Maximize);
        let da = b.add_var("da", true);
        let db = b.add_var("db", true);
        let ea = b.add_var("ea", true);
        let eb = b.add_var("eb", true);
        b.objective(da, 10.0);
        b.objective(db, 3.0);
        b.objective(ea, 1.0);
        b.objective(eb, 1.0);
        // Split: da + db = 4 (e.g. a loop entered 4 times).
        b.constraint(vec![(da, 1.0), (db, 1.0)], Relation::Eq, 4.0);
        // Node a: da = ea, node b: db = eb.
        b.constraint(vec![(da, 1.0), (ea, -1.0)], Relation::Eq, 0.0);
        b.constraint(vec![(db, 1.0), (eb, -1.0)], Relation::Eq, 0.0);
        // Side a at most 3 times.
        b.constraint(vec![(da, 1.0)], Relation::Le, 3.0);
        let p = b.build();
        let red = reduce(&p);
        match solve_network(&red, 10_000) {
            NetEnd::Solved { x, .. } => {
                let full = red.postsolve_witness(&x).unwrap();
                match solve_lp(&p) {
                    LpOutcome::Optimal { x: dx, value } => {
                        for (a, b) in full.iter().zip(dx.iter()) {
                            assert!((*a as f64 - b).abs() < 1e-6, "{full:?} vs {dx:?}");
                        }
                        let net_val: f64 =
                            full.iter().enumerate().map(|(i, &v)| p.objective[i] * v as f64).sum();
                        assert!((net_val - value).abs() < 1e-6);
                    }
                    other => panic!("dense disagreed: {other:?}"),
                }
            }
            other => panic!("expected solve, got {other:?}"),
        }
    }

    #[test]
    fn declines_non_flow_row() {
        let mut b = ProblemBuilder::new(Sense::Maximize);
        let x = b.add_var("x", true);
        let y = b.add_var("y", true);
        b.objective(x, 1.0);
        b.objective(y, 1.0);
        b.constraint(vec![(x, 1.0), (y, 2.0)], Relation::Le, 7.0);
        b.constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 5.0);
        let p = b.build();
        let red = reduce(&p);
        assert!(matches!(solve_network(&red, 10_000), NetEnd::Declined));
    }

    #[test]
    fn declines_three_entry_column() {
        let mut b = ProblemBuilder::new(Sense::Maximize);
        let x = b.add_var("x", true);
        let y = b.add_var("y", true);
        b.objective(x, 1.0);
        b.objective(y, 1.0);
        b.constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 5.0);
        b.constraint(vec![(x, 1.0), (y, -1.0)], Relation::Le, 2.0);
        b.constraint(vec![(x, 1.0), (y, 1.0)], Relation::Ge, 1.0);
        let p = b.build();
        let red = reduce(&p);
        assert!(matches!(solve_network(&red, 10_000), NetEnd::Declined));
    }

    /// Random chain-of-diamonds flow problem: `stages` stages, two parallel
    /// arcs per stage, flow `trips` conserved end to end, plus a bound on
    /// each stage's `a` arc (absorbed by presolve, exercising postsolve).
    fn chain(stages: usize, trips: i64, costs: &[(i64, i64)]) -> crate::model::Problem {
        let mut b = ProblemBuilder::new(Sense::Maximize);
        let mut arcs = Vec::new();
        for (i, &(ca, cb)) in costs.iter().take(stages).enumerate() {
            let a = b.add_var(format!("a{i}"), true);
            let bb = b.add_var(format!("b{i}"), true);
            b.objective(a, ca as f64);
            b.objective(bb, cb as f64);
            arcs.push((a, bb));
        }
        b.constraint(vec![(arcs[0].0, 1.0), (arcs[0].1, 1.0)], Relation::Eq, trips as f64);
        for w in arcs.windows(2) {
            let ((a0, b0), (a1, b1)) = (w[0], w[1]);
            b.constraint(vec![(a0, 1.0), (b0, 1.0), (a1, -1.0), (b1, -1.0)], Relation::Eq, 0.0);
        }
        for &(a, _) in &arcs {
            b.constraint(vec![(a, 1.0)], Relation::Le, (trips - 1).max(1) as f64);
        }
        b.build()
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// Injecting one non-flow row — a coefficient outside `±1`, or a
        /// third row entry for some column — into an otherwise pure flow
        /// problem always demotes the route to `Declined`: the
        /// Heller–Tompkins detector never lets a non-network matrix reach
        /// the network simplex.
        #[test]
        fn injected_non_flow_row_always_declines(
            stages in 1usize..5,
            trips in 2i64..20,
            costs in proptest::collection::vec((0i64..50, 0i64..50), 5),
            coeff in 2i64..5,
            three_entry in proptest::prelude::any::<bool>(),
        ) {
            let mut p = chain(stages, trips, &costs);
            let (a0, b0) = (crate::model::VarId(0), crate::model::VarId(1));
            // With a single stage `a0` sits in just one conservation row, so
            // a ±1 extra row keeps the matrix a legal incidence matrix (two
            // entries per column) — only the off-unit coefficient breaks it.
            let poison = if three_entry && stages >= 2 {
                // Every coefficient is ±1 but `a0`/`b0` now sit in one row
                // too many for a signed incidence matrix.
                Constraint {
                    terms: vec![(a0, 1.0), (b0, 1.0)],
                    relation: Relation::Le,
                    rhs: (trips * 2) as f64,
                }
            } else {
                Constraint {
                    terms: vec![(a0, 1.0), (b0, coeff as f64)],
                    relation: Relation::Le,
                    rhs: (trips * coeff + 10) as f64,
                }
            };
            p.constraints.push(poison);
            let red = reduce(&p);
            proptest::prop_assert!(
                matches!(solve_network(&red, 10_000), NetEnd::Declined),
                "poisoned matrix was routed to the network simplex"
            );
        }

        /// Pure flow chains are always routed (never `Declined`), and a
        /// `Solved` outcome postsolves to exactly the dense LP optimum.
        #[test]
        fn pure_flow_routes_and_matches_dense(
            stages in 1usize..5,
            trips in 2i64..20,
            costs in proptest::collection::vec((0i64..50, 0i64..50), 5),
        ) {
            let p = chain(stages, trips, &costs);
            let red = reduce(&p);
            match solve_network(&red, 10_000) {
                NetEnd::Declined => {
                    proptest::prop_assert!(false, "pure flow problem was not routed");
                }
                NetEnd::Miss { .. } => {} // e.g. tied costs: non-unique optimum
                NetEnd::Solved { x, .. } => {
                    let full = red.postsolve_witness(&x).expect("postsolve");
                    match solve_lp(&p) {
                        LpOutcome::Optimal { value, .. } => {
                            let net_val: f64 = full
                                .iter()
                                .enumerate()
                                .map(|(i, &v)| p.objective[i] * v as f64)
                                .sum();
                            proptest::prop_assert!(
                                (net_val - value).abs() < 1e-6,
                                "network optimum {} != dense optimum {}",
                                net_val,
                                value
                            );
                        }
                        other => {
                            proptest::prop_assert!(false, "dense disagreed: {:?}", other);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn misses_on_non_unique_optimum() {
        // Two parallel paths with identical cost: any split is optimal.
        let mut b = ProblemBuilder::new(Sense::Maximize);
        let da = b.add_var("da", true);
        let db = b.add_var("db", true);
        b.objective(da, 5.0);
        b.objective(db, 5.0);
        b.constraint(vec![(da, 1.0), (db, 1.0)], Relation::Eq, 4.0);
        let p = b.build();
        let red = reduce(&p);
        match solve_network(&red, 10_000) {
            NetEnd::Miss { .. } => {}
            other => panic!("expected miss, got {other:?}"),
        }
    }
}
