//! Property tests: the simplex + branch & bound solver against brute-force
//! enumeration on small integer boxes.

use ipet_lp::{
    solve_ilp, solve_lp, IlpOutcome, LpOutcome, Problem, ProblemBuilder, Relation, Sense,
};
use proptest::prelude::*;

/// A random small ILP over `n` variables bounded to `0..=ub` each, with a
/// handful of random `<=`/`>=`/`=` rows. Bounding every variable keeps the
/// problem finite so brute force is exact.
fn arb_problem() -> impl Strategy<Value = (Problem, u32)> {
    let n = 2usize..4;
    let rows = 0usize..4;
    (n, rows, 1u32..5).prop_flat_map(|(n, rows, ub)| {
        let obj = prop::collection::vec(-5i32..=5, n);
        let row = (
            prop::collection::vec(-3i32..=3, n),
            prop_oneof![Just(Relation::Le), Just(Relation::Ge), Just(Relation::Eq)],
            -10i32..=10,
        );
        let rowvec = prop::collection::vec(row, rows);
        (obj, rowvec).prop_map(move |(obj, rowvec)| {
            let mut b = ProblemBuilder::new(Sense::Maximize);
            let vars: Vec<_> = (0..n).map(|i| b.add_var(format!("v{i}"), true)).collect();
            for (i, &c) in obj.iter().enumerate() {
                b.objective(vars[i], c as f64);
            }
            // Box constraints keep everything finite.
            for &v in &vars {
                b.constraint(vec![(v, 1.0)], Relation::Le, ub as f64);
            }
            for (coeffs, rel, rhs) in rowvec {
                let terms: Vec<_> = coeffs
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c != 0)
                    .map(|(i, &c)| (vars[i], c as f64))
                    .collect();
                if !terms.is_empty() {
                    b.constraint(terms, rel, rhs as f64);
                }
            }
            (b.build(), ub)
        })
    })
}

/// Exhaustive integer search over the box `0..=ub` per variable.
fn brute_force(p: &Problem, ub: u32) -> Option<f64> {
    let n = p.num_vars();
    let mut best: Option<f64> = None;
    let mut point = vec![0u32; n];
    loop {
        let x: Vec<f64> = point.iter().map(|&v| v as f64).collect();
        if p.is_feasible(&x, 1e-9) {
            let val = p.objective_value(&x);
            if best.map(|b| val > b).unwrap_or(true) {
                best = Some(val);
            }
        }
        // Odometer increment.
        let mut i = 0;
        loop {
            if i == n {
                return best;
            }
            if point[i] < ub {
                point[i] += 1;
                break;
            }
            point[i] = 0;
            i += 1;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The ILP optimum matches exhaustive search exactly.
    #[test]
    fn ilp_matches_brute_force((p, ub) in arb_problem()) {
        let brute = brute_force(&p, ub);
        let (out, _) = solve_ilp(&p);
        match (out, brute) {
            (IlpOutcome::Optimal { value, x }, Some(want)) => {
                prop_assert!((value - want).abs() < 1e-6, "solver {value}, brute {want}");
                prop_assert!(p.is_feasible(&x, 1e-6));
            }
            (IlpOutcome::Infeasible, None) => {}
            (got, want) => prop_assert!(false, "solver {got:?} vs brute force {want:?}"),
        }
    }

    /// The LP relaxation never reports a worse maximum than the ILP, and
    /// its optimum is primal feasible.
    #[test]
    fn lp_relaxation_bounds_the_ilp((p, _ub) in arb_problem()) {
        let lp = solve_lp(&p);
        let (ilp, _) = solve_ilp(&p);
        if let (LpOutcome::Optimal { value: lv, x },
                IlpOutcome::Optimal { value: iv, .. }) = (&lp, &ilp) {
            prop_assert!(*lv >= iv - 1e-6, "relaxation {lv} below ILP {iv}");
            prop_assert!(p.is_feasible(x, 1e-6));
        }
        if matches!(lp, LpOutcome::Infeasible) {
            prop_assert!(matches!(ilp, IlpOutcome::Infeasible));
        }
    }

    /// Minimizing the negated objective equals the negated maximum.
    #[test]
    fn minimize_is_negated_maximize((p, _ub) in arb_problem()) {
        let mut q = p.clone();
        q.sense = Sense::Minimize;
        for c in &mut q.objective {
            *c = -*c;
        }
        let (mx, _) = solve_ilp(&p);
        let (mn, _) = solve_ilp(&q);
        match (mx, mn) {
            (IlpOutcome::Optimal { value: a, .. }, IlpOutcome::Optimal { value: b, .. }) => {
                prop_assert!((a + b).abs() < 1e-6, "max {a} vs min {b}");
            }
            (IlpOutcome::Infeasible, IlpOutcome::Infeasible) => {}
            (a, b) => prop_assert!(false, "{a:?} vs {b:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Heller–Tompkins soundness: when the matrix passes the network test
    /// and the right-hand sides are integers, the LP relaxation's optimum
    /// is integral — the §III-D mechanism behind "first LP call integral".
    #[test]
    fn network_matrices_have_integral_relaxations((p, _ub) in arb_problem()) {
        use ipet_lp::{is_network_matrix, INT_TOL};
        prop_assume!(is_network_matrix(&p));
        if let LpOutcome::Optimal { x, .. } = solve_lp(&p) {
            for (i, v) in x.iter().enumerate() {
                prop_assert!(
                    (v - v.round()).abs() < INT_TOL,
                    "variable {i} fractional at {v} in a network matrix"
                );
            }
        }
    }
}
