//! Property tests for the content-addressed problem fingerprint: the key the
//! solve pool caches under must identify a problem up to α-equivalence
//! (variable renaming, row reordering, term noise) and must separate
//! problems that differ semantically.

use ipet_lp::{
    fingerprint, same_structure, set_solver_backend, BaseProblem, Constraint, DeltaSet, Problem,
    ProblemBuilder, Relation, Sense, SolverBackend, VarId,
};
use proptest::prelude::*;

/// A random small ILP: `n` variables, a few random rows, random sense,
/// random integrality.
fn arb_problem() -> impl Strategy<Value = Problem> {
    let n = 2usize..5;
    let rows = 1usize..5;
    (n, rows, any::<bool>()).prop_flat_map(|(n, rows, maximize)| {
        let obj = prop::collection::vec(-5i32..=5, n);
        let flags = prop::collection::vec(any::<bool>(), n);
        let row = (
            prop::collection::vec(-3i32..=3, n),
            prop_oneof![Just(Relation::Le), Just(Relation::Ge), Just(Relation::Eq)],
            -10i32..=10,
        );
        let rowvec = prop::collection::vec(row, rows);
        (obj, flags, rowvec).prop_map(move |(obj, flags, rowvec)| {
            let sense = if maximize { Sense::Maximize } else { Sense::Minimize };
            let mut b = ProblemBuilder::new(sense);
            let vars: Vec<_> = (0..n).map(|i| b.add_var(format!("v{i}"), flags[i])).collect();
            for (i, &c) in obj.iter().enumerate() {
                b.objective(vars[i], c as f64);
            }
            for (coeffs, rel, rhs) in rowvec {
                let terms: Vec<_> =
                    coeffs.iter().enumerate().map(|(i, &c)| (vars[i], c as f64)).collect();
                b.constraint(terms, rel, rhs as f64);
            }
            b.build()
        })
    })
}

/// Applies a variable permutation `perm` (new index of old variable `v` is
/// `perm[v]`) to every part of the problem, producing an α-equivalent model.
fn permute(p: &Problem, perm: &[usize]) -> Problem {
    let n = p.num_vars();
    let mut objective = vec![0.0; n];
    let mut integer = vec![false; n];
    let mut names = vec![String::new(); n];
    for v in 0..n {
        objective[perm[v]] = p.objective[v];
        integer[perm[v]] = p.integer[v];
        names[perm[v]] = p.names[v].clone();
    }
    let constraints = p
        .constraints
        .iter()
        .map(|c| Constraint {
            terms: c.terms.iter().map(|&(v, co)| (VarId(perm[v.0]), co)).collect(),
            relation: c.relation,
            rhs: c.rhs,
        })
        .collect();
    Problem { sense: p.sense, objective, constraints, integer, names }
}

/// Derives a permutation of `0..n` from random ranks (argsort with index
/// tie-break, so it is a permutation for any input).
fn perm_from_ranks(ranks: &[u64], n: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by_key(|&i| (ranks.get(i).copied().unwrap_or(0), i));
    let mut perm = vec![0; n];
    for (new, &old) in idx.iter().enumerate() {
        perm[old] = new;
    }
    perm
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// α-equivalence: any variable permutation plus any row rotation maps to
    /// the same fingerprint.
    #[test]
    fn alpha_equivalent_problems_share_a_key(
        (p, ranks, rot) in (
            arb_problem(),
            prop::collection::vec(0u64..1_000, 5),
            0usize..4,
        )
    ) {
        let n = p.num_vars();
        let perm = perm_from_ranks(&ranks, n);
        let mut q = permute(&p, &perm);
        if !q.constraints.is_empty() {
            let r = rot % q.constraints.len();
            q.constraints.rotate_left(r);
        }
        prop_assert_eq!(fingerprint(&p), fingerprint(&q));
    }

    /// Term-level noise — splitting a coefficient across repeated terms and
    /// appending zero terms — never changes the key or structural equality.
    #[test]
    fn term_noise_is_normalized_away((p, which) in (arb_problem(), 0usize..8)) {
        let mut q = p.clone();
        let i = which % q.constraints.len();
        let noisy: Vec<(VarId, f64)> = q.constraints[i]
            .terms
            .iter()
            .flat_map(|&(v, c)| vec![(v, c / 2.0), (v, c / 2.0), (v, 0.0)])
            .collect();
        q.constraints[i].terms = noisy;
        prop_assert_eq!(fingerprint(&p), fingerprint(&q));
        prop_assert!(same_structure(&p, &q));
    }

    /// Semantic perturbations separate keys: nudging one effective
    /// coefficient, right-hand side, or the sense yields a different
    /// fingerprint.
    #[test]
    fn semantic_changes_separate_keys((p, which, kind) in (arb_problem(), 0usize..8, 0u8..3)) {
        let mut q = p.clone();
        match kind {
            0 => {
                let i = which % q.constraints.len();
                q.constraints[i].rhs += 1.0;
            }
            1 => {
                let v = which % q.num_vars();
                q.objective[v] += 1.0;
            }
            _ => {
                q.sense = match q.sense {
                    Sense::Maximize => Sense::Minimize,
                    Sense::Minimize => Sense::Maximize,
                };
            }
        }
        prop_assert_ne!(fingerprint(&p), fingerprint(&q));
        prop_assert!(!same_structure(&p, &q));
    }

    /// The pool's `(base, delta)` cache key is a pure function of problem
    /// content: selecting a solver backend must not perturb either half.
    /// (A backend-dependent key would silently partition the persistent
    /// store by solver and break warm reuse across `--solver` runs.)
    #[test]
    fn cache_keys_ignore_solver_backend((p, split) in (arb_problem(), 0usize..4)) {
        // Split the rows into a base and a delta so both fingerprint halves
        // are exercised on non-trivial content.
        let cut = split % (p.constraints.len() + 1);
        let mut base_p = p.clone();
        let delta = DeltaSet::new(base_p.constraints.split_off(cut));

        let mut keys = Vec::new();
        for backend in [SolverBackend::Dense, SolverBackend::Sparse, SolverBackend::Auto] {
            set_solver_backend(backend);
            let base = BaseProblem::new(base_p.clone());
            keys.push((base.fingerprint(), base.delta_fingerprint(&delta)));
        }
        set_solver_backend(SolverBackend::Auto);
        prop_assert_eq!(keys[0], keys[1]);
        prop_assert_eq!(keys[0], keys[2]);
    }
}
