//! Property tests for the resource-budget layer: whatever the budget or
//! injected fault, a degraded answer must stay a *safe outer bound* of the
//! exact optimum, and the solver must never panic.

use ipet_lp::{
    solve_ilp, solve_ilp_budgeted, solve_lp, BudgetMeter, IlpOutcome, IlpResolution, LpOutcome,
    Problem, ProblemBuilder, Relation, Sense, SolveBudget, SolverFaults,
};
use proptest::prelude::*;

/// A random small maximization ILP over `n` variables boxed to `0..=ub`,
/// with a handful of random `<=`/`>=`/`=` rows (same family the oracle
/// tests in `proptest_lp.rs` use, so the exact optimum is trustworthy).
fn arb_problem() -> impl Strategy<Value = Problem> {
    let n = 2usize..4;
    let rows = 0usize..4;
    (n, rows, 1u32..5).prop_flat_map(|(n, rows, ub)| {
        let obj = prop::collection::vec(-5i32..=5, n);
        let row = (
            prop::collection::vec(-3i32..=3, n),
            prop_oneof![Just(Relation::Le), Just(Relation::Ge), Just(Relation::Eq)],
            -10i32..=10,
        );
        let rowvec = prop::collection::vec(row, rows);
        (obj, rowvec).prop_map(move |(obj, rowvec)| {
            let mut b = ProblemBuilder::new(Sense::Maximize);
            let vars: Vec<_> = (0..n).map(|i| b.add_var(format!("v{i}"), true)).collect();
            for (i, &c) in obj.iter().enumerate() {
                b.objective(vars[i], c as f64);
            }
            for &v in &vars {
                b.constraint(vec![(v, 1.0)], Relation::Le, ub as f64);
            }
            for (coeffs, rel, rhs) in rowvec {
                let terms: Vec<_> = coeffs
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c != 0)
                    .map(|(i, &c)| (vars[i], c as f64))
                    .collect();
                if !terms.is_empty() {
                    b.constraint(terms, rel, rhs as f64);
                }
            }
            b.build()
        })
    })
}

fn exact_optimum(p: &Problem) -> Option<f64> {
    match solve_ilp(p) {
        (IlpOutcome::Optimal { value, .. }, _) => Some(value),
        (IlpOutcome::Infeasible, _) => None,
        (other, _) => panic!("unlimited solve on a boxed problem: {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Degradation never under-reports: under any node budget, a `Relaxed`
    /// answer's bound dominates the exact maximum, and an `Exact` answer
    /// matches it.
    #[test]
    fn degraded_wcet_bound_dominates_exact((p, max_nodes) in (arb_problem(), 1usize..8)) {
        let exact = exact_optimum(&p);
        let mut budget = SolveBudget::unlimited();
        budget.max_nodes = max_nodes;
        let (res, _) = solve_ilp_budgeted(
            &p,
            &budget,
            &BudgetMeter::new(),
            &mut SolverFaults::none(),
        );
        match (res, exact) {
            (IlpResolution::Exact { value, .. }, Some(opt)) => {
                prop_assert!((value - opt).abs() < 1e-6, "exact {value} vs oracle {opt}");
            }
            (IlpResolution::Relaxed { bound, .. }, Some(opt)) => {
                prop_assert!(bound >= opt - 1e-6, "relaxed {bound} below oracle {opt}");
            }
            // Over-covering an infeasible problem is conservative, hence
            // safe: the relaxation bound only ever errs upward.
            (IlpResolution::Relaxed { .. }, None) => {}
            // Truncation may hide a feasible point, but claiming
            // infeasibility when a solution exists would be unsound.
            (IlpResolution::Infeasible, opt) => prop_assert!(opt.is_none()),
            (IlpResolution::Exhausted, _) => {} // no claim made, trivially safe
            (res, exact) => prop_assert!(false, "unexpected {res:?} (oracle {exact:?})"),
        }
    }

    /// A `LimitReached` fault injected at *any* node index still yields a
    /// safe outcome: never an unsound bound, never a panic.
    #[test]
    fn injected_limit_fault_is_safe_at_any_index((p, at) in (arb_problem(), 0u64..6)) {
        let exact = exact_optimum(&p);
        let (res, _) = solve_ilp_budgeted(
            &p,
            &SolveBudget::unlimited(),
            &BudgetMeter::new(),
            &mut SolverFaults::limit_at(at),
        );
        match (res, exact) {
            (IlpResolution::Exact { value, .. }, Some(opt)) => {
                prop_assert!((value - opt).abs() < 1e-6);
            }
            (IlpResolution::Relaxed { bound, .. }, Some(opt)) => {
                prop_assert!(bound >= opt - 1e-6, "relaxed {bound} below oracle {opt}");
            }
            (IlpResolution::Relaxed { .. }, None) => {}
            (IlpResolution::Infeasible, opt) => prop_assert!(opt.is_none()),
            (IlpResolution::Exhausted, _) => {}
            (res, exact) => prop_assert!(false, "unexpected {res:?} (oracle {exact:?})"),
        }
    }

    /// Injected LP faults (infeasibility / numerical breakdown) at any call
    /// index leave the solver panic-free and the verdict typed.
    #[test]
    fn injected_lp_faults_never_panic((p, at, numerical) in (arb_problem(), 0u64..6, any::<bool>())) {
        let mut faults = if numerical {
            SolverFaults::numerical_at(at)
        } else {
            SolverFaults::infeasible_at(at)
        };
        let (res, _) = solve_ilp_budgeted(
            &p,
            &SolveBudget::unlimited(),
            &BudgetMeter::new(),
            &mut faults,
        );
        // Any verdict is acceptable — the property is that we got one.
        let _ = res;
    }

    /// Poisoning one objective coefficient with a non-finite value is
    /// reported as `Numerical`, never a panic or a garbage bound.
    #[test]
    fn non_finite_data_is_rejected_not_propagated(
        (p, which, poison) in (
            arb_problem(),
            0usize..4,
            prop_oneof![Just(f64::NAN), Just(f64::INFINITY), Just(f64::NEG_INFINITY)],
        )
    ) {
        let mut b = ProblemBuilder::new(Sense::Maximize);
        let n = p.num_vars();
        let vars: Vec<_> = (0..n).map(|i| b.add_var(format!("v{i}"), true)).collect();
        b.objective(vars[which % n], poison);
        b.constraint(vec![(vars[0], 1.0)], Relation::Le, 3.0);
        let poisoned = b.build();
        prop_assert!(matches!(solve_lp(&poisoned), LpOutcome::Numerical));
        let (res, _) = solve_ilp_budgeted(
            &poisoned,
            &SolveBudget::unlimited(),
            &BudgetMeter::new(),
            &mut SolverFaults::none(),
        );
        prop_assert!(matches!(res, IlpResolution::Numerical));
    }

    /// The tick deadline is an actual ceiling: the meter never runs more
    /// than one LP call past it.
    #[test]
    fn tick_deadline_caps_total_work((p, ticks) in (arb_problem(), 0u64..64)) {
        let mut budget = SolveBudget::unlimited();
        budget.deadline_ticks = Some(ticks);
        let meter = BudgetMeter::new();
        let _ = solve_ilp_budgeted(&p, &budget, &meter, &mut SolverFaults::none());
        // One in-flight LP may overshoot by its own iteration allowance,
        // which is itself capped by the ticks that were left.
        prop_assert!(meter.ticks() <= 2 * ticks.max(1), "{} ticks vs deadline {}", meter.ticks(), ticks);
    }
}
