//! Two-process coverage for the advisory-lock stale-break race: two
//! processes race to open a store whose lock holder was SIGKILLed (planted
//! as a dead-pid lock file). Exactly one may win `ReadWrite`; the other
//! must degrade to `ReadOnly`; both must load the store cleanly with no
//! quarantined records. A pre-fix `remove_file`-based stale break let both
//! racers win — racer B could delete racer A's freshly created lock.
//!
//! The race partners are copies of this test binary re-invoked with
//! `IPET_STORE_RACE_HELPER` set (the `helper_open_and_report` "test" is
//! the child's entry point and a no-op otherwise). A file barrier keeps
//! both stores open simultaneously, so a fast winner cannot release the
//! lock before the loser arrives.

use ipet_lp::{fingerprint, IlpResolution, IlpStats, ProblemBuilder, Relation, Sense};
use ipet_store::{Store, StoreMode};
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ipet-lock-race-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir scratch");
    dir
}

fn toy() -> ipet_lp::Problem {
    let mut b = ProblemBuilder::new(Sense::Maximize);
    let x = b.add_var("x", true);
    b.objective(x, 1.0);
    b.constraint(vec![(x, 1.0)], Relation::Le, 3.0);
    b.build()
}

fn wait_for(path: &Path, timeout: Duration) -> bool {
    let t0 = Instant::now();
    while t0.elapsed() < timeout {
        if path.exists() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

/// Child entry point: opens the store named by the environment, holds it
/// across a two-way file barrier, and reports what it got. A no-op when
/// run as part of the normal test suite.
#[test]
fn helper_open_and_report() {
    let Ok(dir) = std::env::var("IPET_STORE_RACE_HELPER") else {
        return;
    };
    let role: usize = std::env::var("IPET_STORE_RACE_ROLE").expect("role").parse().expect("role");
    let dir = PathBuf::from(dir);
    let store = Store::open(dir.join("s.store"));
    // Barrier: announce our open, then hold the store until the peer has
    // opened too (bounded wait so a crashed peer cannot wedge the test).
    std::fs::write(dir.join(format!("opened.{role}")), b"x").expect("announce");
    wait_for(&dir.join(format!("opened.{}", 1 - role)), Duration::from_secs(10));
    println!(
        "RACE role={role} mode={:?} loaded={} quarantined={}",
        store.mode(),
        store.stats().loaded,
        store.stats().quarantined
    );
    drop(store);
}

#[test]
fn two_racers_exactly_one_wins_read_write_after_sigkilled_holder() {
    if !Path::new("/proc").is_dir() {
        eprintln!("lock_race: skipped — no /proc, staleness cannot be detected");
        return;
    }
    let exe = std::env::current_exe().expect("current exe");
    // The race window is scheduling-dependent; several rounds shake it.
    for round in 0..6 {
        let dir = scratch(&format!("r{round}"));
        let path = dir.join("s.store");

        // Seed one durable entry so "no quarantined records" is a
        // meaningful assertion, then simulate a SIGKILLed holder by
        // planting a lock naming a pid that cannot exist.
        {
            let seed = Store::open(&path);
            let p = toy();
            let res = IlpResolution::Exact { x: vec![3.0], value: 3.0 };
            seed.insert(fingerprint(&p), 1, 1, &p, &res, IlpStats::default());
            seed.flush().expect("seed flush");
        }
        let lock = {
            let mut name = path.file_name().unwrap().to_os_string();
            name.push(".lock");
            path.with_file_name(name)
        };
        std::fs::write(&lock, format!("{}", u32::MAX)).expect("plant dead lock");

        let spawn = |role: usize| {
            Command::new(&exe)
                .args(["helper_open_and_report", "--exact", "--nocapture", "--test-threads=1"])
                .env("IPET_STORE_RACE_HELPER", &dir)
                .env("IPET_STORE_RACE_ROLE", role.to_string())
                .stdout(std::process::Stdio::piped())
                .stderr(std::process::Stdio::null())
                .spawn()
                .expect("spawn racer")
        };
        let a = spawn(0);
        let b = spawn(1);
        let out_a = a.wait_with_output().expect("racer 0");
        let out_b = b.wait_with_output().expect("racer 1");
        assert!(out_a.status.success(), "racer 0 failed: {out_a:?}");
        assert!(out_b.status.success(), "racer 1 failed: {out_b:?}");

        let mut modes = Vec::new();
        for out in [&out_a, &out_b] {
            let text = String::from_utf8_lossy(&out.stdout);
            // libtest's unflushed "test ... " prefix can share the line.
            let line = text
                .lines()
                .find_map(|l| l.find("RACE ").map(|at| &l[at..]))
                .unwrap_or_else(|| panic!("no RACE line in: {text}"));
            assert!(line.contains("loaded=1"), "round {round}: seeded entry must load: {line}");
            assert!(
                line.contains("quarantined=0"),
                "round {round}: the race must not damage records: {line}"
            );
            let mode = line
                .split_whitespace()
                .find_map(|f| f.strip_prefix("mode="))
                .expect("mode field")
                .to_string();
            modes.push(mode);
        }
        modes.sort();
        assert_eq!(
            modes,
            vec!["ReadOnly".to_string(), "ReadWrite".to_string()],
            "round {round}: exactly one racer may win read-write"
        );

        // The winner exited and released; the store must be intact and
        // takeable again.
        let after = Store::open(&path);
        assert_eq!(after.mode(), StoreMode::ReadWrite);
        assert_eq!(after.stats().loaded, 1);
        assert_eq!(after.stats().quarantined, 0);
        drop(after);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
