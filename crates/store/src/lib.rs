//! # ipet-store
//!
//! A crash-safe, disk-backed store of solved ILPs, keyed on the same
//! `(base, delta)` fingerprints the in-memory solve cache uses. It lets a
//! second `cinderella analyze` of the same program — or a long-running
//! `cinderella serve` daemon — replay certified solves across *process*
//! boundaries, not just across batches within one process.
//!
//! ## Trust model: the disk is hostile
//!
//! Nothing read back from disk is believed. Every record carries a length
//! and a CRC32 checksum; records that fail framing, checksum, version or
//! decode checks are **quarantined** (counted, skipped) rather than trusted
//! or repaired. A record that decodes cleanly is still only an *index
//! entry*: a replay is authorized exactly like the in-memory cache's —
//! [`same_structure`] against the probe problem plus exact-arithmetic
//! re-certification of the cached witness ([`ipet_audit::certify_witness`]).
//! A flipped bit anywhere can therefore cost a cold solve, never a wrong
//! bound.
//!
//! ## Crash safety: atomic whole-file flushes
//!
//! [`Store::flush`] serializes every live entry to `<path>.tmp`, fsyncs,
//! and atomically renames over `<path>`. Readers therefore observe either
//! the old complete file or the new complete file; a crash (even SIGKILL)
//! mid-flush leaves at worst a stale `.tmp` that the next flush overwrites.
//! Entry payloads are sorted before writing so the bytes are a pure
//! function of the entry set — two runs that solved the same problems
//! produce byte-identical store files.
//!
//! ## Degraded modes, never errors
//!
//! [`Store::open`] is infallible by design. Whatever goes wrong — another
//! process holds the advisory lock, the directory is missing, an injected
//! open fault fires — the store degrades to [`StoreMode::ReadOnly`] or
//! [`StoreMode::InMemory`] and keeps serving probes from whatever it could
//! load. Analysis results are identical in every mode; only persistence
//! and replay opportunities differ.
//!
//! ## Invalidation
//!
//! Each entry is tagged with the analyzer's *identity* hash (which program
//! is this?) and *invalidation* hash (source text, machine model, cache
//! configuration, annotations). [`Store::note_context`] drops entries whose
//! identity matches but whose invalidation hash does not — a changed input
//! silently retires its stale entries instead of relying on fingerprint
//! luck to miss them.

use ipet_audit::{certify_witness, ClaimKind};
use ipet_lp::{
    round_claimed, same_structure, Fingerprint, IlpResolution, IlpStats, IoFault, Problem,
    Relation, Sense, SolverFaults,
};
use std::collections::HashMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Magic + version header; changing the record format bumps the version
/// and quarantines every older file wholesale.
pub const STORE_MAGIC: &[u8; 16] = b"ipet-store-v1\0\0\0";

/// Upper bound on a single record's payload length; anything larger is
/// treated as lost framing (the rest of the file is quarantined).
const MAX_RECORD_LEN: u32 = 1 << 28;

/// Record payload tags.
const TAG_SOLVE: u8 = 1;

/// How the store is operating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreMode {
    /// Normal: loaded from disk (or fresh), holds the advisory lock,
    /// flushes persist.
    ReadWrite,
    /// Another live process holds the lock: replays are served from the
    /// loaded snapshot, inserts stay in memory, flushes are no-ops.
    ReadOnly,
    /// The file could not be opened (missing directory, injected open
    /// fault): behaves like a fresh in-process cache, nothing persists.
    InMemory,
}

impl StoreMode {
    /// Short lowercase label for telemetry and summary lines.
    pub fn label(&self) -> &'static str {
        match self {
            StoreMode::ReadWrite => "rw",
            StoreMode::ReadOnly => "ro",
            StoreMode::InMemory => "mem",
        }
    }
}

/// Cumulative store statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Records decoded and accepted at open.
    pub loaded: u64,
    /// Records (or whole files) refused at open: bad header, bad framing,
    /// checksum mismatch, or decode failure.
    pub quarantined: u64,
    /// Probes answered by a certified replay.
    pub hits: u64,
    /// Probes that found no usable entry.
    pub misses: u64,
    /// Fingerprint matches refused by the structural or witness gates.
    pub rejected: u64,
    /// Entries dropped because their invalidation hash went stale.
    pub invalidated: u64,
    /// Successful flushes to disk.
    pub flushes: u64,
    /// Flushes that failed (IO error or injected write fault).
    pub write_failed: u64,
    /// Opens that degraded to [`StoreMode::InMemory`].
    pub open_failed: u64,
    /// Opens that degraded to [`StoreMode::ReadOnly`] behind a live lock.
    pub lock_busy: u64,
    /// Stale locks (dead owner) that were broken and re-taken.
    pub lock_stale: u64,
}

struct StoreEntry {
    key: u128,
    identity: u128,
    invalidation: u128,
    problem: Problem,
    x: Vec<f64>,
    value: f64,
    stats: IlpStats,
}

struct Inner {
    entries: HashMap<u128, Vec<StoreEntry>>,
    faults: SolverFaults,
}

/// A thread-safe persistent solve store. See the crate docs for the trust
/// and crash-safety model.
pub struct Store {
    path: Option<PathBuf>,
    lock_path: Option<PathBuf>,
    mode: StoreMode,
    inner: Mutex<Inner>,
    /// Serializes whole flushes (snapshot + atomic rewrite) across threads.
    /// `inner` alone is not enough: two concurrent flushes could encode
    /// different snapshots and rename them in the *opposite* order, letting
    /// an older image overwrite a newer one — losing entries whose
    /// acknowledgment already implied durability.
    flush_lock: Mutex<()>,
    loaded: AtomicU64,
    quarantined: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    rejected: AtomicU64,
    invalidated: AtomicU64,
    flushes: AtomicU64,
    write_failed: AtomicU64,
    open_failed: AtomicU64,
    lock_busy: AtomicU64,
    lock_stale: AtomicU64,
}

impl Store {
    /// Opens (or creates) the store at `path`. Infallible: failures
    /// degrade the mode instead of erroring (see crate docs).
    pub fn open(path: impl AsRef<Path>) -> Store {
        Store::open_with_faults(path, SolverFaults::default())
    }

    /// [`Store::open`] with deterministic IO-fault injection (testing).
    pub fn open_with_faults(path: impl AsRef<Path>, faults: SolverFaults) -> Store {
        let path = path.as_ref().to_path_buf();
        let mut store = Store::blank(faults);
        if store.inner.get_mut().expect("store lock").faults.open_fault() {
            store.open_failed.fetch_add(1, Ordering::Relaxed);
            ipet_trace::counter("store.open_failed", 1);
            store.mode = StoreMode::InMemory;
            return store;
        }
        let lock_path = lock_path_for(&path);
        match take_lock(&lock_path) {
            LockOutcome::Acquired { broke_stale } => {
                store.mode = StoreMode::ReadWrite;
                store.lock_path = Some(lock_path);
                if broke_stale {
                    store.lock_stale.fetch_add(1, Ordering::Relaxed);
                    ipet_trace::counter("store.lock_stale", 1);
                }
            }
            LockOutcome::Busy => {
                store.mode = StoreMode::ReadOnly;
                store.lock_busy.fetch_add(1, Ordering::Relaxed);
                ipet_trace::counter("store.lock_busy", 1);
            }
            LockOutcome::Unavailable => {
                store.open_failed.fetch_add(1, Ordering::Relaxed);
                ipet_trace::counter("store.open_failed", 1);
                store.mode = StoreMode::InMemory;
                return store;
            }
        }
        store.path = Some(path.clone());
        match fs::read(&path) {
            Ok(bytes) => store.load_scan(&bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(_) => {
                // Lock taken but the file itself is unreadable: keep the
                // mode (a later flush may still succeed) with no entries.
                store.quarantined.fetch_add(1, Ordering::Relaxed);
                ipet_trace::counter("store.quarantined", 1);
            }
        }
        store
    }

    /// A store that never touches disk ([`StoreMode::InMemory`]).
    pub fn in_memory() -> Store {
        Store::blank(SolverFaults::default())
    }

    fn blank(faults: SolverFaults) -> Store {
        Store {
            path: None,
            lock_path: None,
            mode: StoreMode::InMemory,
            inner: Mutex::new(Inner { entries: HashMap::new(), faults }),
            flush_lock: Mutex::new(()),
            loaded: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            write_failed: AtomicU64::new(0),
            open_failed: AtomicU64::new(0),
            lock_busy: AtomicU64::new(0),
            lock_stale: AtomicU64::new(0),
        }
    }

    /// The operating mode the open resolved to.
    pub fn mode(&self) -> StoreMode {
        self.mode
    }

    /// The backing file path, when one was opened.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Cumulative statistics over the store's lifetime.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            loaded: self.loaded.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            invalidated: self.invalidated.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            write_failed: self.write_failed.load(Ordering::Relaxed),
            open_failed: self.open_failed.load(Ordering::Relaxed),
            lock_busy: self.lock_busy.load(Ordering::Relaxed),
            lock_stale: self.lock_stale.load(Ordering::Relaxed),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        let inner = self.inner.lock().expect("store lock");
        inner.entries.values().map(Vec::len).sum()
    }

    /// True when the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Declares the current analysis context: entries for the same program
    /// identity whose invalidation hash no longer matches are dropped (the
    /// input they were computed from has changed).
    pub fn note_context(&self, identity: u128, invalidation: u128) {
        let mut inner = self.inner.lock().expect("store lock");
        let mut dropped = 0u64;
        for bucket in inner.entries.values_mut() {
            bucket.retain(|e| {
                let stale = e.identity == identity && e.invalidation != invalidation;
                if stale {
                    dropped += 1;
                }
                !stale
            });
        }
        inner.entries.retain(|_, b| !b.is_empty());
        if dropped > 0 {
            self.invalidated.fetch_add(dropped, Ordering::Relaxed);
            ipet_trace::counter("store.invalidated", dropped);
        }
    }

    /// Looks up a certified replay for `problem` under the given context.
    /// Mirrors the in-memory cache's gates: same structure, then exact
    /// witness re-certification. Anything less is a miss.
    pub fn probe(
        &self,
        key: Fingerprint,
        identity: u128,
        invalidation: u128,
        problem: &Problem,
    ) -> Option<(IlpResolution, IlpStats)> {
        let inner = self.inner.lock().expect("store lock");
        let mut near_hit = false;
        if let Some(bucket) = inner.entries.get(&key.0) {
            for entry in bucket {
                if entry.identity != identity || entry.invalidation != invalidation {
                    continue;
                }
                if !same_structure(&entry.problem, problem) {
                    near_hit = true;
                    continue;
                }
                let certified = round_claimed(entry.value)
                    .ok()
                    .and_then(|claimed| {
                        certify_witness(problem, &entry.x, claimed, ClaimKind::Equal).ok()
                    })
                    .is_some();
                if !certified {
                    near_hit = true;
                    continue;
                }
                self.hits.fetch_add(1, Ordering::Relaxed);
                ipet_trace::counter("store.hits", 1);
                let resolution = IlpResolution::Exact { x: entry.x.clone(), value: entry.value };
                return Some((resolution, entry.stats));
            }
        }
        if near_hit {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            ipet_trace::counter("store.rejected", 1);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        ipet_trace::counter("store.misses", 1);
        None
    }

    /// Records a fresh solve. Only [`IlpResolution::Exact`] results are
    /// kept — nothing else carries a witness that can be re-certified on
    /// replay, so nothing else is worth persisting.
    pub fn insert(
        &self,
        key: Fingerprint,
        identity: u128,
        invalidation: u128,
        problem: &Problem,
        resolution: &IlpResolution,
        stats: IlpStats,
    ) {
        let IlpResolution::Exact { x, value } = resolution else {
            return;
        };
        let mut inner = self.inner.lock().expect("store lock");
        let bucket = inner.entries.entry(key.0).or_default();
        let duplicate = bucket.iter().any(|e| {
            e.identity == identity
                && e.invalidation == invalidation
                && same_structure(&e.problem, problem)
        });
        if duplicate {
            return;
        }
        bucket.push(StoreEntry {
            key: key.0,
            identity,
            invalidation,
            problem: problem.clone(),
            x: x.clone(),
            value: *value,
            stats,
        });
    }

    /// Persists every live entry with a whole-file atomic rewrite: encode,
    /// write `<path>.tmp`, fsync, rename. No-op outside
    /// [`StoreMode::ReadWrite`]. Injected IO faults fire here and are
    /// reported as errors (fail) or silently persisted damage (torn /
    /// corrupt) for recovery tests.
    ///
    /// Concurrent flushes are serialized end to end (`flush_lock`): each
    /// snapshot reaches disk in the order it was taken, so a flush that
    /// returned `Ok` can never be overwritten by an older image racing
    /// through the rename. Inserts stay concurrent — only the
    /// snapshot-encode step briefly holds the entry lock.
    pub fn flush(&self) -> Result<(), String> {
        if self.mode != StoreMode::ReadWrite {
            return Ok(());
        }
        let path = self.path.clone().expect("ReadWrite store has a path");
        let _serialize = self.flush_lock.lock().expect("flush lock");
        let mut inner = self.inner.lock().expect("store lock");
        let mut payloads: Vec<Vec<u8>> =
            inner.entries.values().flat_map(|b| b.iter().map(encode_entry)).collect();
        // Deterministic bytes: the file is a pure function of the entry
        // set, independent of insertion or hash-map order.
        payloads.sort_unstable();
        let fault = inner.faults.write_fault();
        if matches!(fault, Some(IoFault::FailWrite)) {
            self.write_failed.fetch_add(1, Ordering::Relaxed);
            ipet_trace::counter("store.write_failed", 1);
            return Err(format!("{}: injected write fault", path.display()));
        }
        let mut bytes = Vec::with_capacity(256);
        bytes.extend_from_slice(STORE_MAGIC);
        let mut last_record_start = None;
        for mut payload in payloads {
            if inner.faults.record_fault() {
                // Flip one payload bit *after* the checksum is computed so
                // the damage is latent until the next open.
                let crc = crc32(&payload);
                let mid = payload.len() / 2;
                payload[mid] ^= 0x40;
                last_record_start = Some(bytes.len());
                push_record_with_crc(&mut bytes, &payload, crc);
            } else {
                last_record_start = Some(bytes.len());
                push_record(&mut bytes, &payload);
            }
        }
        if matches!(fault, Some(IoFault::TornWrite)) {
            // Persist only a prefix: the final record is cut mid-payload,
            // exactly what a crash between write() calls can leave behind.
            if let Some(start) = last_record_start {
                let torn = start + (bytes.len() - start) / 2;
                bytes.truncate(torn.max(start + 1));
            }
        }
        drop(inner);
        match write_atomic(&path, &bytes) {
            Ok(()) => {
                self.flushes.fetch_add(1, Ordering::Relaxed);
                ipet_trace::counter("store.flushes", 1);
                Ok(())
            }
            Err(e) => {
                self.write_failed.fetch_add(1, Ordering::Relaxed);
                ipet_trace::counter("store.write_failed", 1);
                Err(format!("{}: {e}", path.display()))
            }
        }
    }

    /// Scans `bytes` as a store file, accepting good records and
    /// quarantining bad ones. Never errors: worst case is an empty store.
    fn load_scan(&mut self, bytes: &[u8]) {
        let mut loaded = 0u64;
        let mut quarantined = 0u64;
        if bytes.len() < STORE_MAGIC.len() || &bytes[..STORE_MAGIC.len()] != STORE_MAGIC {
            // Wrong magic or version: the whole file is one quarantined
            // unit — guessing at record boundaries of an unknown format
            // would be worse than starting cold.
            quarantined += 1;
            self.quarantined.fetch_add(quarantined, Ordering::Relaxed);
            ipet_trace::counter("store.quarantined", quarantined);
            return;
        }
        let inner = self.inner.get_mut().expect("store lock");
        let mut pos = STORE_MAGIC.len();
        while pos < bytes.len() {
            let Some(header) = bytes.get(pos..pos + 8) else {
                // Trailing fragment shorter than a record header: a torn
                // final write. Quarantine the fragment and stop.
                quarantined += 1;
                break;
            };
            let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
            if len == 0 || len as u64 > MAX_RECORD_LEN as u64 {
                // Implausible length: framing is lost, nothing after this
                // point can be attributed to record boundaries.
                quarantined += 1;
                break;
            }
            let Some(payload) = bytes.get(pos + 8..pos + 8 + len) else {
                quarantined += 1;
                break;
            };
            pos += 8 + len;
            if crc32(payload) != crc {
                quarantined += 1;
                continue;
            }
            match decode_entry(payload) {
                Some(entry) => {
                    loaded += 1;
                    inner.entries.entry(entry.key).or_default().push(entry);
                }
                None => quarantined += 1,
            }
        }
        self.loaded.fetch_add(loaded, Ordering::Relaxed);
        if loaded > 0 {
            ipet_trace::counter("store.loaded", loaded);
        }
        self.quarantined.fetch_add(quarantined, Ordering::Relaxed);
        if quarantined > 0 {
            ipet_trace::counter("store.quarantined", quarantined);
        }
    }
}

impl Drop for Store {
    fn drop(&mut self) {
        if let Some(lock) = &self.lock_path {
            let _ = fs::remove_file(lock);
        }
    }
}

// ---------------------------------------------------------------------------
// Advisory lock
// ---------------------------------------------------------------------------

enum LockOutcome {
    Acquired { broke_stale: bool },
    Busy,
    Unavailable,
}

fn lock_path_for(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".lock");
    path.with_file_name(name)
}

fn try_create_lock(lock: &Path) -> std::io::Result<()> {
    let mut f = fs::OpenOptions::new().write(true).create_new(true).open(lock)?;
    f.write_all(std::process::id().to_string().as_bytes())?;
    f.sync_all()?;
    Ok(())
}

/// True when the lock file names a process that verifiably no longer
/// exists. Conservative: unparseable contents or an unreadable `/proc`
/// mean the lock is treated as live.
fn lock_is_stale(lock: &Path) -> bool {
    if !Path::new("/proc").is_dir() {
        return false;
    }
    match fs::read_to_string(lock) {
        Ok(s) => match s.trim().parse::<u32>() {
            Ok(pid) => !Path::new(&format!("/proc/{pid}")).exists(),
            Err(_) => false,
        },
        Err(_) => false,
    }
}

/// Atomically claims the right to break a stale `lock` by renaming it to a
/// per-process tombstone. Of any number of racers, exactly one rename
/// succeeds — the losers see the source vanish and return `false`. The
/// winner then re-verifies *the tombstone's* content names a dead process:
/// a bare `remove_file` here would be a TOCTOU hole (between the staleness
/// check and the removal, a racer may have broken the stale lock and
/// created a fresh live one — deleting that hands ReadWrite to two
/// processes at once). If the captured lock turns out to be live it is
/// restored via `hard_link` (same inode; `AlreadyExists` means the owner
/// already recreated it, which is just as good) and the break is abandoned.
fn break_stale_lock(lock: &Path) -> bool {
    let mut tomb_name = lock.file_name().unwrap_or_default().to_os_string();
    tomb_name.push(format!(".tomb.{}", std::process::id()));
    let tomb = lock.with_file_name(tomb_name);
    if fs::rename(lock, &tomb).is_err() {
        // Another racer claimed the break (or the holder exited cleanly).
        return false;
    }
    let dead = lock_is_stale(&tomb);
    if !dead {
        let _ = fs::hard_link(&tomb, lock);
    }
    let _ = fs::remove_file(&tomb);
    dead
}

fn take_lock(lock: &Path) -> LockOutcome {
    match try_create_lock(lock) {
        Ok(()) => LockOutcome::Acquired { broke_stale: false },
        Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
            if lock_is_stale(lock) && break_stale_lock(lock) {
                // `create_new` stays the final arbiter: whatever happened
                // between the break and here, at most one process creates
                // the new lock file.
                match try_create_lock(lock) {
                    Ok(()) => LockOutcome::Acquired { broke_stale: true },
                    Err(_) => LockOutcome::Busy,
                }
            } else {
                LockOutcome::Busy
            }
        }
        Err(_) => LockOutcome::Unavailable,
    }
}

// ---------------------------------------------------------------------------
// Atomic file replacement
// ---------------------------------------------------------------------------

fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut tmp_name = path.file_name().unwrap_or_default().to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    let mut f = fs::File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    fs::rename(&tmp, path)?;
    // Persist the rename itself: fsync the containing directory so the
    // new directory entry survives a power cut.
    if let Some(dir) = path.parent() {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected) — hand-rolled, table-driven
// ---------------------------------------------------------------------------

fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC32 checksum (IEEE polynomial) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(crc32_table);
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Record codec
// ---------------------------------------------------------------------------

fn push_record(out: &mut Vec<u8>, payload: &[u8]) {
    push_record_with_crc(out, payload, crc32(payload));
}

fn push_record_with_crc(out: &mut Vec<u8>, payload: &[u8], crc: u32) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(payload);
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u128(out: &mut Vec<u8>, v: u128) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn encode_entry(e: &StoreEntry) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    out.push(TAG_SOLVE);
    put_u128(&mut out, e.key);
    put_u128(&mut out, e.identity);
    put_u128(&mut out, e.invalidation);
    encode_problem(&mut out, &e.problem);
    put_u64(&mut out, e.x.len() as u64);
    for &v in &e.x {
        put_f64(&mut out, v);
    }
    put_f64(&mut out, e.value);
    put_u64(&mut out, e.stats.lp_calls as u64);
    put_u64(&mut out, e.stats.nodes as u64);
    out.push(e.stats.first_relaxation_integral as u8);
    out
}

fn encode_problem(out: &mut Vec<u8>, p: &Problem) {
    out.push(match p.sense {
        Sense::Maximize => 0,
        Sense::Minimize => 1,
    });
    put_u64(out, p.objective.len() as u64);
    for &c in &p.objective {
        put_f64(out, c);
    }
    for &i in &p.integer {
        out.push(i as u8);
    }
    for name in &p.names {
        put_str(out, name);
    }
    put_u64(out, p.constraints.len() as u64);
    for con in &p.constraints {
        out.push(match con.relation {
            Relation::Le => 0,
            Relation::Ge => 1,
            Relation::Eq => 2,
        });
        put_f64(out, con.rhs);
        put_u64(out, con.terms.len() as u64);
        for &(v, c) in &con.terms {
            put_u64(out, v.0 as u64);
            put_f64(out, c);
        }
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let slice = self.buf.get(self.pos..self.pos.checked_add(n)?)?;
        self.pos += n;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn u128(&mut self) -> Option<u128> {
        Some(u128::from_le_bytes(self.take(16)?.try_into().ok()?))
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    /// A length that must still fit in the remaining buffer (guards
    /// against decode-time allocation bombs from corrupt lengths).
    fn len(&mut self) -> Option<usize> {
        let n = usize::try_from(self.u64()?).ok()?;
        if n > self.buf.len().saturating_sub(self.pos) {
            return None;
        }
        Some(n)
    }

    fn str(&mut self) -> Option<String> {
        let n = self.len()?;
        String::from_utf8(self.take(n)?.to_vec()).ok()
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn decode_entry(payload: &[u8]) -> Option<StoreEntry> {
    let mut c = Cursor { buf: payload, pos: 0 };
    if c.u8()? != TAG_SOLVE {
        return None;
    }
    let key = c.u128()?;
    let identity = c.u128()?;
    let invalidation = c.u128()?;
    let problem = decode_problem(&mut c)?;
    let xn = c.len()?;
    let mut x = Vec::with_capacity(xn);
    for _ in 0..xn {
        x.push(c.f64()?);
    }
    let value = c.f64()?;
    let lp_calls = usize::try_from(c.u64()?).ok()?;
    let nodes = usize::try_from(c.u64()?).ok()?;
    let first = match c.u8()? {
        0 => false,
        1 => true,
        _ => return None,
    };
    if !c.done() {
        return None;
    }
    if x.len() != problem.num_vars() {
        return None;
    }
    Some(StoreEntry {
        key,
        identity,
        invalidation,
        problem,
        x,
        value,
        stats: IlpStats { lp_calls, nodes, first_relaxation_integral: first },
    })
}

fn decode_problem(c: &mut Cursor<'_>) -> Option<Problem> {
    let sense = match c.u8()? {
        0 => Sense::Maximize,
        1 => Sense::Minimize,
        _ => return None,
    };
    let nvars = c.len()?;
    let mut objective = Vec::with_capacity(nvars);
    for _ in 0..nvars {
        objective.push(c.f64()?);
    }
    let mut integer = Vec::with_capacity(nvars);
    for _ in 0..nvars {
        integer.push(match c.u8()? {
            0 => false,
            1 => true,
            _ => return None,
        });
    }
    let mut names = Vec::with_capacity(nvars);
    for _ in 0..nvars {
        names.push(c.str()?);
    }
    let ncons = c.len()?;
    let mut constraints = Vec::with_capacity(ncons);
    for _ in 0..ncons {
        let relation = match c.u8()? {
            0 => Relation::Le,
            1 => Relation::Ge,
            2 => Relation::Eq,
            _ => return None,
        };
        let rhs = c.f64()?;
        let nterms = c.len()?;
        let mut terms = Vec::with_capacity(nterms);
        for _ in 0..nterms {
            let v = usize::try_from(c.u64()?).ok()?;
            if v >= nvars {
                return None;
            }
            terms.push((ipet_lp::VarId(v), c.f64()?));
        }
        constraints.push(ipet_lp::Constraint { terms, relation, rhs });
    }
    Some(Problem { sense, objective, constraints, integer, names })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipet_lp::ProblemBuilder;
    use std::sync::atomic::AtomicUsize;

    /// A fresh scratch directory per test (no tempfile crate in-tree).
    fn scratch(tag: &str) -> PathBuf {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("ipet-store-test-{}-{tag}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("mkdir scratch");
        dir
    }

    fn toy() -> Problem {
        let mut b = ProblemBuilder::new(Sense::Maximize);
        let x = b.add_var("x", true);
        let y = b.add_var("y", true);
        b.objective(x, 3.0);
        b.objective(y, 2.0);
        b.constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
        b.constraint(vec![(x, 1.0)], Relation::Le, 2.0);
        b.build()
    }

    fn toy_exact() -> IlpResolution {
        IlpResolution::Exact { x: vec![2.0, 2.0], value: 10.0 }
    }

    fn key_of(p: &Problem) -> Fingerprint {
        ipet_lp::fingerprint(p)
    }

    #[test]
    fn round_trip_replays_bit_identical() {
        let dir = scratch("roundtrip");
        let path = dir.join("s.store");
        let p = toy();
        let key = key_of(&p);
        {
            let store = Store::open(&path);
            assert_eq!(store.mode(), StoreMode::ReadWrite);
            store.insert(key, 1, 2, &p, &toy_exact(), IlpStats::default());
            store.flush().expect("flush");
        }
        let store = Store::open(&path);
        assert_eq!(store.stats().loaded, 1);
        assert_eq!(store.stats().quarantined, 0);
        let (res, _) = store.probe(key, 1, 2, &p).expect("replay");
        assert_eq!(res, toy_exact());
        assert_eq!(store.stats().hits, 1);
    }

    #[test]
    fn wrong_context_is_not_replayed() {
        let dir = scratch("ctx");
        let path = dir.join("s.store");
        let p = toy();
        let key = key_of(&p);
        let store = Store::open(&path);
        store.insert(key, 1, 2, &p, &toy_exact(), IlpStats::default());
        // Same identity, different invalidation hash: the source changed.
        assert!(store.probe(key, 1, 3, &p).is_none());
        // Different identity entirely: another program.
        assert!(store.probe(key, 9, 2, &p).is_none());
        assert_eq!(store.stats().hits, 0);
    }

    #[test]
    fn note_context_drops_stale_entries() {
        let dir = scratch("invalidate");
        let path = dir.join("s.store");
        let p = toy();
        let key = key_of(&p);
        let store = Store::open(&path);
        store.insert(key, 1, 2, &p, &toy_exact(), IlpStats::default());
        store.note_context(1, 2);
        assert_eq!(store.len(), 1, "matching context keeps the entry");
        store.note_context(1, 99);
        assert_eq!(store.len(), 0, "changed invalidation hash drops it");
        assert_eq!(store.stats().invalidated, 1);
    }

    #[test]
    fn corrupt_witness_on_disk_costs_a_solve_never_a_bound() {
        let dir = scratch("badwitness");
        let path = dir.join("s.store");
        let p = toy();
        let key = key_of(&p);
        let store = Store::open(&path);
        // Witness violates x <= 2; it decodes fine but must not certify.
        let bad = IlpResolution::Exact { x: vec![4.0, 0.0], value: 12.0 };
        store.insert(key, 1, 2, &p, &bad, IlpStats::default());
        assert!(store.probe(key, 1, 2, &p).is_none());
        assert_eq!(store.stats().rejected, 1);
    }

    #[test]
    fn non_exact_resolutions_are_not_persisted() {
        let dir = scratch("nonexact");
        let store = Store::open(dir.join("s.store"));
        let p = toy();
        store.insert(
            key_of(&p),
            1,
            2,
            &p,
            &IlpResolution::Relaxed { bound: 11.0, incumbent: None },
            IlpStats::default(),
        );
        assert!(store.is_empty());
    }

    #[test]
    fn bit_flip_quarantines_the_record() {
        let dir = scratch("bitflip");
        let path = dir.join("s.store");
        let p = toy();
        let key = key_of(&p);
        {
            let store = Store::open(&path);
            store.insert(key, 1, 2, &p, &toy_exact(), IlpStats::default());
            store.flush().expect("flush");
        }
        let mut bytes = fs::read(&path).expect("read back");
        let mid = STORE_MAGIC.len() + 8 + (bytes.len() - STORE_MAGIC.len() - 8) / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).expect("rewrite");
        let store = Store::open(&path);
        assert_eq!(store.stats().loaded, 0);
        assert_eq!(store.stats().quarantined, 1);
        assert!(store.probe(key, 1, 2, &p).is_none());
    }

    #[test]
    fn truncated_file_quarantines_only_the_tail() {
        let dir = scratch("truncate");
        let path = dir.join("s.store");
        let p = toy();
        let q = {
            let mut b = ProblemBuilder::new(Sense::Minimize);
            let x = b.add_var("x", true);
            b.objective(x, 1.0);
            b.constraint(vec![(x, 1.0)], Relation::Ge, 3.0);
            b.build()
        };
        {
            let store = Store::open(&path);
            store.insert(key_of(&p), 1, 2, &p, &toy_exact(), IlpStats::default());
            store.insert(
                key_of(&q),
                1,
                2,
                &q,
                &IlpResolution::Exact { x: vec![3.0], value: 3.0 },
                IlpStats::default(),
            );
            store.flush().expect("flush");
        }
        let bytes = fs::read(&path).expect("read back");
        fs::write(&path, &bytes[..bytes.len() - 5]).expect("truncate");
        let store = Store::open(&path);
        assert_eq!(store.stats().loaded, 1, "first record survives");
        assert_eq!(store.stats().quarantined, 1, "torn tail is quarantined");
    }

    #[test]
    fn wrong_magic_quarantines_the_whole_file() {
        let dir = scratch("magic");
        let path = dir.join("s.store");
        fs::write(&path, b"ipet-store-v9\0\0\0junkjunkjunk").expect("write");
        let store = Store::open(&path);
        assert_eq!(store.stats().loaded, 0);
        assert_eq!(store.stats().quarantined, 1);
        assert_eq!(store.mode(), StoreMode::ReadWrite, "still usable fresh");
    }

    #[test]
    fn live_lock_degrades_to_read_only() {
        let dir = scratch("lock");
        let path = dir.join("s.store");
        let first = Store::open(&path);
        assert_eq!(first.mode(), StoreMode::ReadWrite);
        let second = Store::open(&path);
        assert_eq!(second.mode(), StoreMode::ReadOnly);
        assert_eq!(second.stats().lock_busy, 1);
        // Read-only stores still cache in memory; flush is a no-op.
        let p = toy();
        second.insert(key_of(&p), 1, 2, &p, &toy_exact(), IlpStats::default());
        second.flush().expect("no-op flush");
        assert!(!path.exists(), "read-only store must not write the file");
        drop(first);
        let third = Store::open(&path);
        assert_eq!(third.mode(), StoreMode::ReadWrite, "lock released on drop");
    }

    #[test]
    fn stale_lock_is_broken() {
        let dir = scratch("stale");
        let path = dir.join("s.store");
        // A PID that cannot be running: pid_max on Linux is < 2^22 by
        // default and u32::MAX is far beyond any configured value.
        fs::write(lock_path_for(&path), format!("{}", u32::MAX)).expect("plant lock");
        let store = Store::open(&path);
        if Path::new("/proc").is_dir() {
            assert_eq!(store.mode(), StoreMode::ReadWrite);
            assert_eq!(store.stats().lock_stale, 1);
        } else {
            assert_eq!(store.mode(), StoreMode::ReadOnly);
        }
    }

    #[test]
    fn breaking_a_live_lock_restores_it_untouched() {
        // `break_stale_lock` is only reached after a staleness check, but
        // the check is racy by nature: the function must detect that the
        // lock it captured is in fact live, put it back, and refuse.
        if !Path::new("/proc").is_dir() {
            return;
        }
        let dir = scratch("liveclaim");
        let lock = lock_path_for(&dir.join("s.store"));
        let my_pid = std::process::id().to_string();
        fs::write(&lock, &my_pid).expect("plant live lock");
        assert!(!break_stale_lock(&lock), "a live lock must not be broken");
        assert_eq!(fs::read_to_string(&lock).expect("restored"), my_pid);
        assert!(
            !dir.read_dir()
                .unwrap()
                .any(|e| { e.unwrap().file_name().to_string_lossy().contains(".tomb.") }),
            "no tombstone may linger"
        );
    }

    #[test]
    fn breaking_a_dead_lock_claims_and_removes_it() {
        if !Path::new("/proc").is_dir() {
            return;
        }
        let dir = scratch("deadclaim");
        let lock = lock_path_for(&dir.join("s.store"));
        fs::write(&lock, format!("{}", u32::MAX)).expect("plant dead lock");
        assert!(break_stale_lock(&lock));
        assert!(!lock.exists(), "broken lock must be gone");
        // A second breaker finds nothing to claim.
        assert!(!break_stale_lock(&lock));
    }

    #[test]
    fn concurrent_flushes_and_inserts_lose_nothing_acknowledged() {
        // Hammer one store with interleaved inserts and flushes from many
        // threads; every entry inserted before the final flush must be on
        // disk afterwards. Distinct problems come from distinct rhs values.
        let dir = scratch("concflush");
        let path = dir.join("s.store");
        let store = Store::open(&path);
        assert_eq!(store.mode(), StoreMode::ReadWrite);
        let threads = 8usize;
        let per_thread = 12usize;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let store = &store;
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let mut b = ProblemBuilder::new(Sense::Maximize);
                        let x = b.add_var("x", true);
                        b.objective(x, 1.0);
                        let rhs = (t * per_thread + i) as f64;
                        b.constraint(vec![(x, 1.0)], Relation::Le, rhs);
                        let p = b.build();
                        let res = IlpResolution::Exact { x: vec![rhs], value: rhs };
                        store.insert(key_of(&p), 7, 7, &p, &res, IlpStats::default());
                        store.flush().expect("flush");
                    }
                });
            }
        });
        store.flush().expect("final flush");
        assert_eq!(store.len(), threads * per_thread);
        drop(store);
        let reopened = Store::open(&path);
        assert_eq!(reopened.stats().quarantined, 0, "no torn or corrupt records");
        assert_eq!(
            reopened.stats().loaded,
            (threads * per_thread) as u64,
            "every acknowledged entry must survive concurrent flushing"
        );
    }

    #[test]
    fn missing_directory_degrades_to_in_memory() {
        let dir = scratch("nodir");
        let path = dir.join("no").join("such").join("dir").join("s.store");
        let store = Store::open(&path);
        assert_eq!(store.mode(), StoreMode::InMemory);
        assert_eq!(store.stats().open_failed, 1);
        let p = toy();
        store.insert(key_of(&p), 1, 2, &p, &toy_exact(), IlpStats::default());
        assert!(store.probe(key_of(&p), 1, 2, &p).is_some(), "still caches");
        store.flush().expect("no-op flush");
    }

    #[test]
    fn injected_open_fault_degrades_to_in_memory() {
        let dir = scratch("openfault");
        let store = Store::open_with_faults(dir.join("s.store"), SolverFaults::fail_open());
        assert_eq!(store.mode(), StoreMode::InMemory);
        assert_eq!(store.stats().open_failed, 1);
    }

    #[test]
    fn injected_write_fault_fails_the_flush_and_leaves_no_file() {
        let dir = scratch("writefault");
        let path = dir.join("s.store");
        let store = Store::open_with_faults(&path, SolverFaults::fail_write_at(0));
        let p = toy();
        store.insert(key_of(&p), 1, 2, &p, &toy_exact(), IlpStats::default());
        assert!(store.flush().is_err());
        assert_eq!(store.stats().write_failed, 1);
        assert!(!path.exists(), "failed flush must not leave bytes behind");
        // The fault fires once; the retry (next flush index) succeeds.
        store.flush().expect("second flush");
        assert!(path.exists());
    }

    #[test]
    fn torn_write_is_quarantined_on_reopen() {
        let dir = scratch("torn");
        let path = dir.join("s.store");
        let p = toy();
        {
            let store = Store::open_with_faults(&path, SolverFaults::torn_write_at(0));
            store.insert(key_of(&p), 1, 2, &p, &toy_exact(), IlpStats::default());
            store.flush().expect("torn flush still renames");
        }
        let store = Store::open(&path);
        assert_eq!(store.stats().loaded, 0);
        assert_eq!(store.stats().quarantined, 1);
        assert!(store.probe(key_of(&p), 1, 2, &p).is_none());
    }

    #[test]
    fn corrupt_record_fault_is_latent_until_reopen() {
        let dir = scratch("corruptrec");
        let path = dir.join("s.store");
        let p = toy();
        {
            let store = Store::open_with_faults(&path, SolverFaults::corrupt_record_at(0));
            store.insert(key_of(&p), 1, 2, &p, &toy_exact(), IlpStats::default());
            store.flush().expect("flush succeeds; damage is silent");
        }
        let store = Store::open(&path);
        assert_eq!(store.stats().loaded, 0);
        assert_eq!(store.stats().quarantined, 1, "CRC catches the flip");
    }

    #[test]
    fn flush_bytes_are_deterministic() {
        let dir = scratch("determinism");
        let p = toy();
        let q = {
            let mut b = ProblemBuilder::new(Sense::Minimize);
            let x = b.add_var("x", true);
            b.objective(x, 1.0);
            b.constraint(vec![(x, 1.0)], Relation::Ge, 3.0);
            b.build()
        };
        let qres = IlpResolution::Exact { x: vec![3.0], value: 3.0 };
        let path_a = dir.join("a.store");
        let path_b = dir.join("b.store");
        {
            let a = Store::open(&path_a);
            a.insert(key_of(&p), 1, 2, &p, &toy_exact(), IlpStats::default());
            a.insert(key_of(&q), 1, 2, &q, &qres, IlpStats::default());
            a.flush().expect("flush a");
        }
        {
            let b = Store::open(&path_b);
            // Opposite insertion order must yield identical bytes.
            b.insert(key_of(&q), 1, 2, &q, &qres, IlpStats::default());
            b.insert(key_of(&p), 1, 2, &p, &toy_exact(), IlpStats::default());
            b.flush().expect("flush b");
        }
        assert_eq!(
            fs::read(&path_a).expect("a"),
            fs::read(&path_b).expect("b"),
            "store bytes must be order-independent"
        );
    }

    #[test]
    fn duplicate_insert_is_coalesced() {
        let dir = scratch("dup");
        let store = Store::open(dir.join("s.store"));
        let p = toy();
        store.insert(key_of(&p), 1, 2, &p, &toy_exact(), IlpStats::default());
        store.insert(key_of(&p), 1, 2, &p, &toy_exact(), IlpStats::default());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn crc32_known_vector() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
