//! Differential property test: compiled mini-C expressions evaluated on
//! the simulator must match a direct AST interpreter.

use ipet_lang::{compile_module, BinOp, Expr, ExprKind, FuncDecl, Item, Module, Stmt, UnOp};
use ipet_sim::{SimConfig, Simulator};
use proptest::prelude::*;

/// Reference evaluator with the architecture's semantics: wrapping
/// arithmetic, total division (x/0 = 0), masked shifts, 0/1 booleans.
fn eval(e: &Expr, a: i32, b: i32) -> i32 {
    match &e.kind {
        ExprKind::Num(n) => *n as i32,
        ExprKind::Var(v) => match v.as_str() {
            "a" => a,
            "b" => b,
            _ => unreachable!("generator only emits a, b"),
        },
        ExprKind::Unary(op, inner) => {
            let v = eval(inner, a, b);
            match op {
                UnOp::Neg => 0i32.wrapping_sub(v),
                UnOp::Not => i32::from(v == 0),
            }
        }
        ExprKind::Binary(op, l, r) => {
            let (x, y) = (eval(l, a, b), eval(r, a, b));
            match op {
                BinOp::Add => x.wrapping_add(y),
                BinOp::Sub => x.wrapping_sub(y),
                BinOp::Mul => x.wrapping_mul(y),
                BinOp::Div => {
                    if y == 0 {
                        0
                    } else {
                        x.wrapping_div(y)
                    }
                }
                BinOp::Rem => {
                    if y == 0 {
                        0
                    } else {
                        x.wrapping_rem(y)
                    }
                }
                BinOp::And => x & y,
                BinOp::Or => x | y,
                BinOp::Xor => x ^ y,
                BinOp::Shl => x.wrapping_shl(y as u32 & 31),
                BinOp::Shr => x.wrapping_shr(y as u32 & 31),
                BinOp::Lt => i32::from(x < y),
                BinOp::Le => i32::from(x <= y),
                BinOp::Gt => i32::from(x > y),
                BinOp::Ge => i32::from(x >= y),
                BinOp::Eq => i32::from(x == y),
                BinOp::Ne => i32::from(x != y),
                BinOp::LAnd => i32::from(x != 0 && eval(r, a, b) != 0),
                BinOp::LOr => i32::from(x != 0 || eval(r, a, b) != 0),
            }
        }
        ExprKind::Index(..) | ExprKind::Call(..) => unreachable!("not generated"),
    }
}

fn leaf() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (-100i64..=100).prop_map(|n| Expr { kind: ExprKind::Num(n), line: 1 }),
        Just(Expr { kind: ExprKind::Var("a".into()), line: 1 }),
        Just(Expr { kind: ExprKind::Var("b".into()), line: 1 }),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    leaf().prop_recursive(4, 24, 3, |inner| {
        let bin = prop_oneof![
            Just(BinOp::Add),
            Just(BinOp::Sub),
            Just(BinOp::Mul),
            Just(BinOp::Div),
            Just(BinOp::Rem),
            Just(BinOp::And),
            Just(BinOp::Or),
            Just(BinOp::Xor),
            Just(BinOp::Shl),
            Just(BinOp::Shr),
            Just(BinOp::Lt),
            Just(BinOp::Le),
            Just(BinOp::Gt),
            Just(BinOp::Ge),
            Just(BinOp::Eq),
            Just(BinOp::Ne),
            Just(BinOp::LAnd),
            Just(BinOp::LOr),
        ];
        let unop = prop_oneof![Just(UnOp::Neg), Just(UnOp::Not)];
        prop_oneof![
            (bin, inner.clone(), inner.clone()).prop_map(|(op, l, r)| Expr {
                kind: ExprKind::Binary(op, Box::new(l), Box::new(r)),
                line: 1,
            }),
            (unop, inner)
                .prop_map(|(op, e)| Expr { kind: ExprKind::Unary(op, Box::new(e)), line: 1 }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// For random expressions and random inputs, the compiled program and
    /// the reference evaluator agree.
    #[test]
    fn compiled_expressions_match_reference(
        e in arb_expr(),
        a in -1000i32..1000,
        b in -1000i32..1000,
    ) {
        let module = Module {
            items: vec![Item::Func(FuncDecl {
                name: "f".into(),
                params: vec!["a".into(), "b".into()],
                body: vec![Stmt::Return { value: Some(e.clone()), line: 1 }],
                line: 1,
            })],
        };
        let program = compile_module(&module, "f").expect("compiles");
        let machine = ipet_sim::Machine::i960kb();
        let mut sim = Simulator::new(&program, machine, SimConfig::default());
        let got = sim.run(&[a, b]).expect("runs").return_value;
        let want = eval(&e, a, b);
        prop_assert_eq!(got, want, "expr {:?} a={} b={}", e, a, b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// Peephole optimisation preserves semantics: O0 and O1 builds return
    /// the same value on the same input, and O1 never executes more
    /// instructions.
    #[test]
    fn optimizer_preserves_semantics(
        e in arb_expr(),
        a in -1000i32..1000,
        b in -1000i32..1000,
    ) {
        let module = Module {
            items: vec![Item::Func(FuncDecl {
                name: "f".into(),
                params: vec!["a".into(), "b".into()],
                body: vec![
                    Stmt::Decl { name: "t".into(), init: Some(e.clone()), line: 1 },
                    Stmt::Assign {
                        name: "t".into(),
                        value: Expr {
                            kind: ExprKind::Binary(
                                BinOp::Add,
                                Box::new(Expr { kind: ExprKind::Var("t".into()), line: 1 }),
                                Box::new(e),
                            ),
                            line: 1,
                        },
                        line: 1,
                    },
                    Stmt::Return {
                        value: Some(Expr { kind: ExprKind::Var("t".into()), line: 1 }),
                        line: 1,
                    },
                ],
                line: 1,
            })],
        };
        let o0 = compile_module(&module, "f").expect("compiles");
        let mut o1 = o0.clone();
        ipet_lang::optimize_program(&mut o1);
        let machine = ipet_sim::Machine::i960kb();
        let mut s0 = Simulator::new(&o0, machine, SimConfig::default());
        let mut s1 = Simulator::new(&o1, machine, SimConfig::default());
        let r0 = s0.run(&[a, b]).expect("O0 runs");
        let r1 = s1.run(&[a, b]).expect("O1 runs");
        prop_assert_eq!(r0.return_value, r1.return_value);
        prop_assert!(r1.steps <= r0.steps);
    }
}
