//! Robustness: the mini-C front end never panics on arbitrary input.

use ipet_lang::{compile, parse_module};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary UTF-8 never panics the parser.
    #[test]
    fn parser_never_panics(src in ".*") {
        let _ = parse_module(&src);
    }

    /// C-ish token soup never panics the parser or the code generator.
    #[test]
    fn frontend_survives_token_soup(
        toks in prop::collection::vec(
            prop_oneof![
                Just("int"), Just("const"), Just("if"), Just("else"),
                Just("while"), Just("do"), Just("for"), Just("return"),
                Just("break"), Just("continue"), Just("{"), Just("}"),
                Just("("), Just(")"), Just("["), Just("]"), Just(";"),
                Just(","), Just("="), Just("=="), Just("<"), Just("+"),
                Just("-"), Just("*"), Just("/"), Just("&&"), Just("||"),
                Just("x"), Just("y"), Just("main"), Just("0"), Just("42"),
            ],
            0..60,
        )
    ) {
        let src = toks.join(" ");
        let _ = compile(&src, "main");
    }
}
