//! A peephole optimiser over generated machine code.
//!
//! The paper insists the analysis run on the assembly level precisely "so
//! as to capture all the effects of the compiler optimizations"; this pass
//! provides those effects. Three classic window-of-two rewrites, applied
//! only where no branch target interferes:
//!
//! 1. **store-to-load forwarding** — `st r,[fp+s]; ld r',[fp+s]` becomes
//!    `st r,[fp+s]; mov r',r` (or drops the load when `r' == r`);
//! 2. **constant folding** — `ldc r,k1; <op> r,r,k2` becomes
//!    `ldc r, k1 op k2`;
//! 3. **dead-code removal** — `mov r,r` and immediately overwritten
//!    `ldc`s disappear.
//!
//! Removing instructions renumbers branch targets; the pass never removes
//! a branch target itself, so the basic-block partition (and therefore the
//! `x_i` numbering the annotations use) is preserved.

use ipet_arch::{Function, Instr, Operand, Reg};
use std::collections::HashSet;

/// Optimisation level for [`crate::compile_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptLevel {
    /// Straightforward code generation (the default; block numbering in
    /// the bundled benchmark annotations is calibrated at this level).
    #[default]
    O0,
    /// Peephole optimisation: store-to-load forwarding, constant folding,
    /// dead-move elimination.
    O1,
}

/// Instruction indices that are branch targets (block leaders we must not
/// disturb).
fn branch_targets(f: &Function) -> HashSet<usize> {
    f.instrs.iter().filter_map(|i| i.branch_target()).collect()
}

/// One pass of window-of-two rewrites. Returns true when anything changed.
fn peephole_pass(f: &mut Function) -> bool {
    let targets = branch_targets(f);
    let n = f.instrs.len();
    let mut keep = vec![true; n];
    let mut replace: Vec<Option<Instr>> = vec![None; n];
    let mut changed = false;

    for i in 0..n.saturating_sub(1) {
        if !keep[i] || replace[i].is_some() {
            continue;
        }
        let j = i + 1;
        // Rewrites couple i and i+1: the second must not be a leader.
        if targets.contains(&j) {
            continue;
        }
        match (f.instrs[i], f.instrs[j]) {
            // st r,[fp+s]; ld r',[fp+s]  ->  forward the stored value.
            (Instr::St { src, base: b1, offset: o1 }, Instr::Ld { dst, base: b2, offset: o2 })
                if b1 == Reg::FP && b2 == Reg::FP && o1 == o2 =>
            {
                if dst == src {
                    keep[j] = false;
                } else {
                    replace[j] = Some(Instr::Mov { dst, src });
                }
                changed = true;
            }
            // ldc r,k1; alu op r,r,k2  ->  ldc r, fold(op,k1,k2)
            (
                Instr::Ldc { dst: d1, imm: k1 },
                Instr::Alu { op, dst: d2, a, b: Operand::Imm(k2) },
            ) if d1 == d2 && a == d1 => {
                keep[i] = false;
                replace[j] = Some(Instr::Ldc { dst: d2, imm: op.apply(k1, k2) });
                changed = true;
            }
            // ldc r,_; ldc r,k  ->  second wins, first is dead.
            (Instr::Ldc { dst: d1, .. }, Instr::Ldc { dst: d2, .. }) if d1 == d2 => {
                keep[i] = false;
                changed = true;
            }
            _ => {}
        }
    }
    // mov r,r is dead wherever it is (it cannot be coupled, only removed —
    // removing a leader would merely shift the block start, which we avoid
    // for annotation stability).
    for (i, k) in keep.iter_mut().enumerate() {
        if let Instr::Mov { dst, src } = f.instrs[i] {
            if dst == src && !targets.contains(&i) && *k {
                *k = false;
                changed = true;
            }
        }
    }
    if !changed {
        return false;
    }

    // Apply replacements, then compact with target renumbering.
    for (i, r) in replace.into_iter().enumerate() {
        if let Some(ins) = r {
            f.instrs[i] = ins;
        }
    }
    // Any removed instruction must not be a branch target.
    debug_assert!((0..n).all(|i| keep[i] || !targets.contains(&i)));

    let mut new_index = vec![0usize; n + 1];
    let mut next = 0usize;
    for (i, &k) in keep.iter().enumerate() {
        new_index[i] = next;
        if k {
            next += 1;
        }
    }
    new_index[n] = next;

    let mut instrs = Vec::with_capacity(next);
    let mut lines = Vec::with_capacity(next);
    for (i, &k) in keep.iter().enumerate() {
        if !k {
            continue;
        }
        let mut ins = f.instrs[i];
        match &mut ins {
            Instr::Br { target, .. } | Instr::Jmp { target } => {
                *target = new_index[*target];
            }
            _ => {}
        }
        instrs.push(ins);
        lines.push(f.src_lines.get(i).copied().unwrap_or(0));
    }
    f.instrs = instrs;
    f.src_lines = lines;
    true
}

/// Optimises one function to a fixed point.
pub fn optimize_function(f: &mut Function) {
    let mut budget = 16; // each pass strictly shrinks or stabilises
    while budget > 0 && peephole_pass(f) {
        budget -= 1;
    }
}

/// Optimises every function of a program in place and re-lays-out the
/// text segment.
pub fn optimize_program(p: &mut ipet_arch::Program) {
    for f in &mut p.functions {
        optimize_function(f);
    }
    p.layout();
    debug_assert!(p.validate().is_ok(), "peephole must preserve validity");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, compile_with};
    use ipet_arch::AluOp;

    #[test]
    fn store_load_forwarding_fires() {
        // `int x = 1; return x + 2;` produces st [fp]; ld [fp] at O0.
        let src = "int f() { int x; x = 1; return x + 2; }";
        let o0 = compile(src, "f").unwrap();
        let o1 = compile_with(src, "f", OptLevel::O1).unwrap();
        assert!(o1.functions[0].instrs.len() < o0.functions[0].instrs.len());
    }

    #[test]
    fn constant_folding_collapses_ldc_alu() {
        let mut f = Function::new("f");
        f.instrs = vec![
            Instr::Ldc { dst: Reg::T0, imm: 6 },
            Instr::Alu { op: AluOp::Mul, dst: Reg::T0, a: Reg::T0, b: Operand::Imm(7) },
            Instr::Ret,
        ];
        f.src_lines = vec![1, 1, 1];
        optimize_function(&mut f);
        assert_eq!(f.instrs, vec![Instr::Ldc { dst: Reg::T0, imm: 42 }, Instr::Ret]);
    }

    #[test]
    fn branch_targets_are_renumbered() {
        let mut f = Function::new("f");
        f.instrs = vec![
            Instr::Ldc { dst: Reg::T0, imm: 1 },
            Instr::Alu { op: AluOp::Add, dst: Reg::T0, a: Reg::T0, b: Operand::Imm(2) },
            Instr::Jmp { target: 3 },
            Instr::Ret,
        ];
        f.src_lines = vec![1; 4];
        optimize_function(&mut f);
        // ldc+add folded away one instruction; the jmp target must follow.
        assert_eq!(f.instrs.len(), 3);
        assert_eq!(f.instrs[1].branch_target(), Some(2));
    }

    #[test]
    fn leaders_are_never_removed() {
        // The ld at the branch target must survive even though the pattern
        // matches.
        let mut f = Function::new("f");
        f.instrs = vec![
            Instr::Br { cond: ipet_arch::Cond::Eq, a: Reg::T0, b: Operand::Imm(0), target: 2 },
            Instr::St { src: Reg::T0, base: Reg::FP, offset: 0 },
            Instr::Ld { dst: Reg::T0, base: Reg::FP, offset: 0 }, // leader!
            Instr::Ret,
        ];
        f.src_lines = vec![1; 4];
        let before = f.instrs.clone();
        optimize_function(&mut f);
        assert_eq!(f.instrs, before, "pattern spans a leader; must not fire");
    }

    #[test]
    fn optimization_preserves_semantics_and_tightens_wcet() {
        let src = "
            int f(int n) {
                int i;
                int s;
                s = 0;
                for (i = 0; i < 10; i = i + 1) {
                    s = s + 2 * 3;
                    s = s + i;
                }
                return s;
            }";
        let o0 = compile(src, "f").unwrap();
        let o1 = compile_with(src, "f", OptLevel::O1).unwrap();
        assert!(o1.validate().is_ok());
        // Instruction count strictly decreases.
        let len = |p: &ipet_arch::Program| p.functions[0].instrs.len();
        assert!(len(&o1) < len(&o0), "{} vs {}", len(&o1), len(&o0));
    }
}
