//! Mini-C abstract syntax tree.

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (truncated)
    Div,
    /// `%`
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>` (arithmetic)
    Shr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&` (short-circuit)
    LAnd,
    /// `||` (short-circuit)
    LOr,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (`!`), yields 0 or 1.
    Not,
}

/// An expression with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expr {
    /// Expression node.
    pub kind: ExprKind,
    /// 1-based source line.
    pub line: usize,
}

/// Expression node kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprKind {
    /// Integer literal.
    Num(i64),
    /// Scalar variable or named constant.
    Var(String),
    /// Global array element `name[index]`.
    Index(String, Box<Expr>),
    /// Function call.
    Call(String, Vec<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

/// A statement with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `int name;` or `int name = expr;` (local scalar).
    Decl { name: String, init: Option<Expr>, line: usize },
    /// `name = expr;`
    Assign { name: String, value: Expr, line: usize },
    /// `name[index] = expr;`
    AssignIndex { name: String, index: Expr, value: Expr, line: usize },
    /// `if (cond) { .. } else { .. }`
    If { cond: Expr, then_branch: Vec<Stmt>, else_branch: Vec<Stmt>, line: usize },
    /// `while (cond) { .. }`
    While { cond: Expr, body: Vec<Stmt>, line: usize },
    /// `do { .. } while (cond);`
    DoWhile { body: Vec<Stmt>, cond: Expr, line: usize },
    /// `for (init; cond; step) { .. }` — any clause may be empty.
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Box<Stmt>>,
        body: Vec<Stmt>,
        line: usize,
    },
    /// `return;` / `return expr;`
    Return { value: Option<Expr>, line: usize },
    /// `break;`
    Break { line: usize },
    /// `continue;`
    Continue { line: usize },
    /// An expression evaluated for effect (a call).
    ExprStmt { expr: Expr, line: usize },
}

impl Stmt {
    /// Source line of the statement.
    pub fn line(&self) -> usize {
        match self {
            Stmt::Decl { line, .. }
            | Stmt::Assign { line, .. }
            | Stmt::AssignIndex { line, .. }
            | Stmt::If { line, .. }
            | Stmt::While { line, .. }
            | Stmt::DoWhile { line, .. }
            | Stmt::For { line, .. }
            | Stmt::Return { line, .. }
            | Stmt::Break { line }
            | Stmt::Continue { line }
            | Stmt::ExprStmt { line, .. } => *line,
        }
    }
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncDecl {
    /// Function name.
    pub name: String,
    /// Parameter names (all `int`).
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// 1-based source line of the signature.
    pub line: usize,
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// `const NAME = 10;` — a compile-time integer constant.
    Const { name: String, value: i64, line: usize },
    /// `int name;` / `int name = 3;` — a global scalar.
    GlobalScalar { name: String, init: i64, line: usize },
    /// `int name[N];` / `int name[N] = {..};` — a global array.
    GlobalArray { name: String, words: u32, init: Vec<i64>, line: usize },
    /// A function definition.
    Func(FuncDecl),
}

/// A parsed source file.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Module {
    /// Items in declaration order.
    pub items: Vec<Item>,
}

impl Module {
    /// All function declarations in order.
    pub fn functions(&self) -> impl Iterator<Item = &FuncDecl> {
        self.items.iter().filter_map(|i| match i {
            Item::Func(f) => Some(f),
            _ => None,
        })
    }
}
