//! Mini-C lexer.

use std::fmt;

/// A compilation failure with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// 1-based source line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl CompileError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> CompileError {
        CompileError { line, message: message.into() }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CompileError {}

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Tok {
    // keywords
    Int,
    Const,
    If,
    Else,
    While,
    Do,
    For,
    Return,
    Break,
    Continue,
    // literals / names
    Ident(String),
    Num(i64),
    // punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Assign,
    // operators
    Plus,
    PlusEq,
    PlusPlus,
    Minus,
    MinusEq,
    MinusMinus,
    Star,
    StarEq,
    Slash,
    SlashEq,
    Percent,
    Amp,
    AmpAmp,
    Pipe,
    PipePipe,
    Caret,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    Not,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Tok::Int => "int",
            Tok::Const => "const",
            Tok::If => "if",
            Tok::Else => "else",
            Tok::While => "while",
            Tok::Do => "do",
            Tok::For => "for",
            Tok::Return => "return",
            Tok::Break => "break",
            Tok::Continue => "continue",
            Tok::Ident(s) => return write!(f, "{s}"),
            Tok::Num(n) => return write!(f, "{n}"),
            Tok::LParen => "(",
            Tok::RParen => ")",
            Tok::LBrace => "{",
            Tok::RBrace => "}",
            Tok::LBracket => "[",
            Tok::RBracket => "]",
            Tok::Semi => ";",
            Tok::Comma => ",",
            Tok::Assign => "=",
            Tok::Plus => "+",
            Tok::PlusEq => "+=",
            Tok::PlusPlus => "++",
            Tok::Minus => "-",
            Tok::MinusEq => "-=",
            Tok::MinusMinus => "--",
            Tok::Star => "*",
            Tok::StarEq => "*=",
            Tok::Slash => "/",
            Tok::SlashEq => "/=",
            Tok::Percent => "%",
            Tok::Amp => "&",
            Tok::AmpAmp => "&&",
            Tok::Pipe => "|",
            Tok::PipePipe => "||",
            Tok::Caret => "^",
            Tok::Shl => "<<",
            Tok::Shr => ">>",
            Tok::Lt => "<",
            Tok::Le => "<=",
            Tok::Gt => ">",
            Tok::Ge => ">=",
            Tok::EqEq => "==",
            Tok::Ne => "!=",
            Tok::Not => "!",
        };
        f.write_str(s)
    }
}

/// Tokenizes mini-C source; comments are `//` and `/* ... */`.
pub(crate) fn lex(src: &str) -> Result<Vec<(Tok, usize)>, CompileError> {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                i += 2;
                loop {
                    match (chars.get(i), chars.get(i + 1)) {
                        (Some('*'), Some('/')) => {
                            i += 2;
                            break;
                        }
                        (Some('\n'), _) => {
                            line += 1;
                            i += 1;
                        }
                        (Some(_), _) => i += 1,
                        (None, _) => {
                            return Err(CompileError::new(line, "unterminated block comment"))
                        }
                    }
                }
            }
            '(' => {
                out.push((Tok::LParen, line));
                i += 1;
            }
            ')' => {
                out.push((Tok::RParen, line));
                i += 1;
            }
            '{' => {
                out.push((Tok::LBrace, line));
                i += 1;
            }
            '}' => {
                out.push((Tok::RBrace, line));
                i += 1;
            }
            '[' => {
                out.push((Tok::LBracket, line));
                i += 1;
            }
            ']' => {
                out.push((Tok::RBracket, line));
                i += 1;
            }
            ';' => {
                out.push((Tok::Semi, line));
                i += 1;
            }
            ',' => {
                out.push((Tok::Comma, line));
                i += 1;
            }
            '+' => match chars.get(i + 1) {
                Some('=') => {
                    out.push((Tok::PlusEq, line));
                    i += 2;
                }
                Some('+') => {
                    out.push((Tok::PlusPlus, line));
                    i += 2;
                }
                _ => {
                    out.push((Tok::Plus, line));
                    i += 1;
                }
            },
            '-' => match chars.get(i + 1) {
                Some('=') => {
                    out.push((Tok::MinusEq, line));
                    i += 2;
                }
                Some('-') => {
                    out.push((Tok::MinusMinus, line));
                    i += 2;
                }
                _ => {
                    out.push((Tok::Minus, line));
                    i += 1;
                }
            },
            '*' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push((Tok::StarEq, line));
                    i += 2;
                } else {
                    out.push((Tok::Star, line));
                    i += 1;
                }
            }
            '/' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push((Tok::SlashEq, line));
                    i += 2;
                } else {
                    out.push((Tok::Slash, line));
                    i += 1;
                }
            }
            '%' => {
                out.push((Tok::Percent, line));
                i += 1;
            }
            '^' => {
                out.push((Tok::Caret, line));
                i += 1;
            }
            '&' => {
                if chars.get(i + 1) == Some(&'&') {
                    out.push((Tok::AmpAmp, line));
                    i += 2;
                } else {
                    out.push((Tok::Amp, line));
                    i += 1;
                }
            }
            '|' => {
                if chars.get(i + 1) == Some(&'|') {
                    out.push((Tok::PipePipe, line));
                    i += 2;
                } else {
                    out.push((Tok::Pipe, line));
                    i += 1;
                }
            }
            '<' => match chars.get(i + 1) {
                Some('=') => {
                    out.push((Tok::Le, line));
                    i += 2;
                }
                Some('<') => {
                    out.push((Tok::Shl, line));
                    i += 2;
                }
                _ => {
                    out.push((Tok::Lt, line));
                    i += 1;
                }
            },
            '>' => match chars.get(i + 1) {
                Some('=') => {
                    out.push((Tok::Ge, line));
                    i += 2;
                }
                Some('>') => {
                    out.push((Tok::Shr, line));
                    i += 2;
                }
                _ => {
                    out.push((Tok::Gt, line));
                    i += 1;
                }
            },
            '=' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push((Tok::EqEq, line));
                    i += 2;
                } else {
                    out.push((Tok::Assign, line));
                    i += 1;
                }
            }
            '!' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push((Tok::Ne, line));
                    i += 2;
                } else {
                    out.push((Tok::Not, line));
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let n: i64 = text
                    .parse()
                    .map_err(|_| CompileError::new(line, format!("bad integer {text}")))?;
                out.push((Tok::Num(n), line));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                let tok = match word.as_str() {
                    "int" => Tok::Int,
                    "const" => Tok::Const,
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    "while" => Tok::While,
                    "do" => Tok::Do,
                    "for" => Tok::For,
                    "return" => Tok::Return,
                    "break" => Tok::Break,
                    "continue" => Tok::Continue,
                    _ => Tok::Ident(word),
                };
                out.push((tok, line));
            }
            other => {
                return Err(CompileError::new(line, format!("unexpected character {other:?}")))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|(t, _)| t).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("int x while whilex"),
            vec![Tok::Int, Tok::Ident("x".into()), Tok::While, Tok::Ident("whilex".into())]
        );
    }

    #[test]
    fn two_char_operators_win() {
        assert_eq!(
            toks("<= >= == != && || << >> < > = ! & |"),
            vec![
                Tok::Le,
                Tok::Ge,
                Tok::EqEq,
                Tok::Ne,
                Tok::AmpAmp,
                Tok::PipePipe,
                Tok::Shl,
                Tok::Shr,
                Tok::Lt,
                Tok::Gt,
                Tok::Assign,
                Tok::Not,
                Tok::Amp,
                Tok::Pipe
            ]
        );
    }

    #[test]
    fn comments_and_lines() {
        let tokens = lex("a // one\n/* two\nthree */ b").unwrap();
        assert_eq!(tokens.len(), 2);
        assert_eq!(tokens[0].1, 1);
        assert_eq!(tokens[1].1, 3);
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(lex("/* oops").is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("0 42 123456789"), vec![Tok::Num(0), Tok::Num(42), Tok::Num(123456789)]);
    }

    #[test]
    fn rejects_unknown_character() {
        let err = lex("a $ b").unwrap_err();
        assert!(err.message.contains('$'));
        assert_eq!(err.line, 1);
    }
}
