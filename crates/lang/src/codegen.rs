//! Code generation from the mini-C AST to `ipet-arch` machine code.
//!
//! The generator is deliberately simple and deterministic (no optimisation
//! passes): locals live in frame slots, expressions evaluate on a register
//! stack (`T0..`), globals are addressed off the hard-wired zero register,
//! and all control flow lowers to compare-and-branch — producing exactly
//! the CFG shapes the paper's figures show.

use crate::ast::*;
use crate::lexer::CompileError;
use ipet_arch::{AluOp, AsmBuilder, Cond, FuncId, Global, Label, Program, Reg};
use std::collections::HashMap;

/// Number of expression-stack registers (`T0..`).
fn max_temps() -> u32 {
    Reg::temp_count() as u32
}

#[derive(Debug, Clone, Copy)]
struct GlobalInfo {
    addr: u32,
    words: u32,
}

#[derive(Debug, Default)]
struct Ctx {
    consts: HashMap<String, i64>,
    globals: HashMap<String, GlobalInfo>,
    funcs: HashMap<String, (FuncId, usize)>,
}

/// Compiles a parsed [`Module`] with `entry` as the program entry point.
///
/// # Errors
///
/// Reports semantic errors (unknown names, arity mismatches, assignment to
/// constants, `break` outside a loop, over-deep expressions, missing entry
/// function) with source lines.
pub fn compile_module(module: &Module, entry: &str) -> Result<Program, CompileError> {
    let mut ctx = Ctx::default();
    let mut globals = Vec::new();
    let mut next_addr = 0u32;

    // Pass 1: collect consts, globals and function signatures.
    for item in &module.items {
        match item {
            Item::Const { name, value, line } => {
                if ctx.consts.insert(name.clone(), *value).is_some() {
                    return Err(CompileError::new(*line, format!("duplicate const {name}")));
                }
            }
            Item::GlobalScalar { name, init, line } => {
                if ctx.globals.contains_key(name) {
                    return Err(CompileError::new(*line, format!("duplicate global {name}")));
                }
                ctx.globals.insert(name.clone(), GlobalInfo { addr: next_addr, words: 1 });
                globals.push(Global {
                    name: name.clone(),
                    addr: next_addr,
                    words: 1,
                    init: vec![*init as i32],
                });
                next_addr += 1;
            }
            Item::GlobalArray { name, words, init, line } => {
                if ctx.globals.contains_key(name) {
                    return Err(CompileError::new(*line, format!("duplicate global {name}")));
                }
                ctx.globals.insert(name.clone(), GlobalInfo { addr: next_addr, words: *words });
                globals.push(Global {
                    name: name.clone(),
                    addr: next_addr,
                    words: *words,
                    init: init.iter().map(|&v| v as i32).collect(),
                });
                next_addr += *words;
            }
            Item::Func(f) => {
                if ctx.funcs.contains_key(&f.name) {
                    return Err(CompileError::new(
                        f.line,
                        format!("duplicate function {}", f.name),
                    ));
                }
                let id = FuncId(ctx.funcs.len());
                ctx.funcs.insert(f.name.clone(), (id, f.params.len()));
            }
        }
    }

    // Pass 2: generate code.
    let mut functions = Vec::new();
    for f in module.functions() {
        functions.push(FnCg::generate(&ctx, f)?);
    }

    let (entry_id, _) = *ctx
        .funcs
        .get(entry)
        .ok_or_else(|| CompileError::new(1, format!("entry function {entry} not found")))?;

    Program::new(functions, globals, entry_id)
        .map_err(|e| CompileError::new(1, format!("generated program invalid: {e}")))
}

struct FnCg<'a> {
    ctx: &'a Ctx,
    b: AsmBuilder,
    locals: HashMap<String, u32>,
    n_locals: u32,
    depth: u32,
    max_spill: u32,
    /// `(break target, continue target)` per enclosing loop.
    loop_stack: Vec<(Label, Label)>,
}

impl<'a> FnCg<'a> {
    fn generate(ctx: &'a Ctx, f: &FuncDecl) -> Result<ipet_arch::Function, CompileError> {
        // Collect every local (params first) into frame slots.
        let mut locals = HashMap::new();
        for (i, p) in f.params.iter().enumerate() {
            if locals.insert(p.clone(), i as u32).is_some() {
                return Err(CompileError::new(f.line, format!("duplicate parameter {p}")));
            }
        }
        let mut order = f.params.len() as u32;
        collect_locals(&f.body, &mut locals, &mut order)?;

        let mut cg = FnCg {
            ctx,
            b: AsmBuilder::new(f.name.clone()),
            locals,
            n_locals: order,
            depth: 0,
            max_spill: 0,
            loop_stack: Vec::new(),
        };
        cg.b.num_params(f.params.len() as u32);
        cg.b.set_line(f.line as u32);

        // Prologue: spill register parameters into their frame slots.
        for i in 0..f.params.len() {
            cg.b.st(Reg::arg(i as u8), Reg::FP, i as i32);
        }
        cg.stmts(&f.body)?;
        // Implicit `return 0` (trimmed from the CFG when unreachable).
        cg.b.ldc(Reg::RV, 0);
        cg.b.ret();

        cg.b.frame_words(cg.n_locals + cg.max_spill);
        cg.b.finish().map_err(|e| CompileError::new(f.line, format!("internal label error: {e}")))
    }

    // -- expression stack helpers ------------------------------------------

    fn top(&self) -> Reg {
        Reg::temp((self.depth - 1) as u8)
    }

    fn push_slot(&mut self, line: usize) -> Result<Reg, CompileError> {
        if self.depth >= max_temps() {
            return Err(CompileError::new(
                line,
                "expression too deeply nested for the register stack",
            ));
        }
        self.depth += 1;
        Ok(self.top())
    }

    fn pop(&mut self, n: u32) {
        debug_assert!(self.depth >= n);
        self.depth -= n;
    }

    fn spill_slot(&self, i: u32) -> i32 {
        (self.n_locals + i) as i32
    }

    // -- name resolution -----------------------------------------------------

    fn local(&self, name: &str) -> Option<u32> {
        self.locals.get(name).copied()
    }

    // -- expressions ---------------------------------------------------------

    /// Evaluates `e`, leaving the value in a fresh stack register.
    fn eval(&mut self, e: &Expr) -> Result<(), CompileError> {
        match &e.kind {
            ExprKind::Num(n) => {
                let v = i32::try_from(*n)
                    .map_err(|_| CompileError::new(e.line, format!("literal {n} out of range")))?;
                let t = self.push_slot(e.line)?;
                self.b.ldc(t, v);
            }
            ExprKind::Var(name) => {
                if let Some(slot) = self.local(name) {
                    let t = self.push_slot(e.line)?;
                    self.b.ld(t, Reg::FP, slot as i32);
                } else if let Some(&c) = self.ctx.consts.get(name) {
                    let v = i32::try_from(c).map_err(|_| {
                        CompileError::new(e.line, format!("constant {name} out of range"))
                    })?;
                    let t = self.push_slot(e.line)?;
                    self.b.ldc(t, v);
                } else if let Some(g) = self.ctx.globals.get(name) {
                    if g.words != 1 {
                        return Err(CompileError::new(
                            e.line,
                            format!("array {name} used without an index"),
                        ));
                    }
                    let t = self.push_slot(e.line)?;
                    self.b.ld(t, Reg::ZERO, g.addr as i32);
                } else {
                    return Err(CompileError::new(e.line, format!("unknown name {name}")));
                }
            }
            ExprKind::Index(name, idx) => {
                let g =
                    *self.ctx.globals.get(name).ok_or_else(|| {
                        CompileError::new(e.line, format!("unknown array {name}"))
                    })?;
                self.eval(idx)?;
                let t = self.top();
                self.b.ld(t, t, g.addr as i32);
            }
            ExprKind::Call(name, args) => {
                self.call(name, args, e.line)?;
            }
            ExprKind::Unary(op, inner) => match op {
                UnOp::Neg => {
                    self.eval(inner)?;
                    let t = self.top();
                    self.b.alu(AluOp::Sub, t, Reg::ZERO, t);
                }
                UnOp::Not => {
                    self.boolean_value(e)?;
                }
            },
            ExprKind::Binary(op, lhs, rhs) => match op {
                BinOp::LAnd
                | BinOp::LOr
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::Eq
                | BinOp::Ne => {
                    self.boolean_value(e)?;
                }
                _ => {
                    let alu = match op {
                        BinOp::Add => AluOp::Add,
                        BinOp::Sub => AluOp::Sub,
                        BinOp::Mul => AluOp::Mul,
                        BinOp::Div => AluOp::Div,
                        BinOp::Rem => AluOp::Rem,
                        BinOp::And => AluOp::And,
                        BinOp::Or => AluOp::Or,
                        BinOp::Xor => AluOp::Xor,
                        BinOp::Shl => AluOp::Shl,
                        BinOp::Shr => AluOp::Shr,
                        _ => unreachable!("comparison handled above"),
                    };
                    self.eval(lhs)?;
                    self.eval(rhs)?;
                    let r = self.top();
                    self.pop(1);
                    let l = self.top();
                    self.b.alu(alu, l, l, r);
                }
            },
        }
        Ok(())
    }

    /// Materialises a boolean expression as 0/1 in a fresh register.
    fn boolean_value(&mut self, e: &Expr) -> Result<(), CompileError> {
        let lt = self.b.fresh_label();
        let lf = self.b.fresh_label();
        let join = self.b.fresh_label();
        self.branch(e, lt, lf)?;
        let t = self.push_slot(e.line)?;
        self.b.bind(lt);
        self.b.ldc(t, 1);
        self.b.jmp(join);
        self.b.bind(lf);
        self.b.ldc(t, 0);
        self.b.bind(join);
        Ok(())
    }

    /// Compiles `e` as a condition: jumps to `lt` when true, `lf` when
    /// false. Both labels are left unbound for the caller.
    fn branch(&mut self, e: &Expr, lt: Label, lf: Label) -> Result<(), CompileError> {
        match &e.kind {
            ExprKind::Binary(op, lhs, rhs)
                if matches!(
                    op,
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
                ) =>
            {
                let cond = match op {
                    BinOp::Lt => Cond::Lt,
                    BinOp::Le => Cond::Le,
                    BinOp::Gt => Cond::Gt,
                    BinOp::Ge => Cond::Ge,
                    BinOp::Eq => Cond::Eq,
                    BinOp::Ne => Cond::Ne,
                    _ => unreachable!(),
                };
                self.eval(lhs)?;
                self.eval(rhs)?;
                let r = self.top();
                self.pop(1);
                let l = self.top();
                self.pop(1);
                self.b.br(cond, l, r, lt);
                self.b.jmp(lf);
            }
            ExprKind::Binary(BinOp::LAnd, lhs, rhs) => {
                let mid = self.b.fresh_label();
                self.branch(lhs, mid, lf)?;
                self.b.bind(mid);
                self.branch(rhs, lt, lf)?;
            }
            ExprKind::Binary(BinOp::LOr, lhs, rhs) => {
                let mid = self.b.fresh_label();
                self.branch(lhs, lt, mid)?;
                self.b.bind(mid);
                self.branch(rhs, lt, lf)?;
            }
            ExprKind::Unary(UnOp::Not, inner) => {
                self.branch(inner, lf, lt)?;
            }
            _ => {
                self.eval(e)?;
                let t = self.top();
                self.pop(1);
                self.b.br(Cond::Ne, t, 0, lt);
                self.b.jmp(lf);
            }
        }
        Ok(())
    }

    fn call(&mut self, name: &str, args: &[Expr], line: usize) -> Result<(), CompileError> {
        let (id, arity) = *self
            .ctx
            .funcs
            .get(name)
            .ok_or_else(|| CompileError::new(line, format!("unknown function {name}")))?;
        if args.len() != arity {
            return Err(CompileError::new(
                line,
                format!("{name} takes {arity} arguments, {} given", args.len()),
            ));
        }
        let base = self.depth;
        for a in args {
            self.eval(a)?;
        }
        // Save the live expression stack below the arguments: the callee
        // clobbers every temp register.
        self.max_spill = self.max_spill.max(base);
        for i in 0..base {
            self.b.st(Reg::temp(i as u8), Reg::FP, self.spill_slot(i));
        }
        for (i, _) in args.iter().enumerate() {
            self.b.mov(Reg::arg(i as u8), Reg::temp((base + i as u32) as u8));
        }
        self.b.call(id);
        self.pop(args.len() as u32);
        let t = self.push_slot(line)?;
        self.b.mov(t, Reg::RV);
        for i in 0..base {
            self.b.ld(Reg::temp(i as u8), Reg::FP, self.spill_slot(i));
        }
        Ok(())
    }

    // -- statements ----------------------------------------------------------

    fn stmts(&mut self, body: &[Stmt]) -> Result<(), CompileError> {
        for s in body {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn store_local(&mut self, name: &str, line: usize) -> Result<(), CompileError> {
        // Value on top of the stack; consume it.
        let t = self.top();
        if let Some(slot) = self.local(name) {
            self.b.st(t, Reg::FP, slot as i32);
        } else if self.ctx.consts.contains_key(name) {
            return Err(CompileError::new(line, format!("cannot assign to constant {name}")));
        } else if let Some(g) = self.ctx.globals.get(name) {
            if g.words != 1 {
                return Err(CompileError::new(
                    line,
                    format!("array {name} assigned without an index"),
                ));
            }
            self.b.st(t, Reg::ZERO, g.addr as i32);
        } else {
            return Err(CompileError::new(line, format!("unknown name {name}")));
        }
        self.pop(1);
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        self.b.set_line(s.line() as u32);
        match s {
            Stmt::Decl { name, init, .. } => {
                if let Some(e) = init {
                    self.eval(e)?;
                    let slot = self.local(name).expect("collected in pass 1");
                    let t = self.top();
                    self.b.st(t, Reg::FP, slot as i32);
                    self.pop(1);
                }
            }
            Stmt::Assign { name, value, line } => {
                self.eval(value)?;
                self.store_local(name, *line)?;
            }
            Stmt::AssignIndex { name, index, value, line } => {
                let g = *self
                    .ctx
                    .globals
                    .get(name)
                    .ok_or_else(|| CompileError::new(*line, format!("unknown array {name}")))?;
                self.eval(index)?;
                self.eval(value)?;
                let v = self.top();
                self.pop(1);
                let idx = self.top();
                self.pop(1);
                self.b.st(v, idx, g.addr as i32);
            }
            Stmt::If { cond, then_branch, else_branch, .. } => {
                let lt = self.b.fresh_label();
                let lf = self.b.fresh_label();
                self.branch(cond, lt, lf)?;
                self.b.bind(lt);
                self.stmts(then_branch)?;
                if else_branch.is_empty() {
                    self.b.bind(lf);
                } else {
                    let join = self.b.fresh_label();
                    self.b.jmp(join);
                    self.b.bind(lf);
                    self.stmts(else_branch)?;
                    self.b.bind(join);
                }
            }
            Stmt::While { cond, body, .. } => {
                let head = self.b.fresh_label();
                let lt = self.b.fresh_label();
                let lf = self.b.fresh_label();
                self.b.bind(head);
                self.branch(cond, lt, lf)?;
                self.b.bind(lt);
                self.loop_stack.push((lf, head));
                self.stmts(body)?;
                self.loop_stack.pop();
                self.b.jmp(head);
                self.b.bind(lf);
            }
            Stmt::DoWhile { body, cond, .. } => {
                let top = self.b.fresh_label();
                let check = self.b.fresh_label();
                let exit = self.b.fresh_label();
                self.b.bind(top);
                self.loop_stack.push((exit, check));
                self.stmts(body)?;
                self.loop_stack.pop();
                self.b.bind(check);
                self.branch(cond, top, exit)?;
                self.b.bind(exit);
            }
            Stmt::For { init, cond, step, body, .. } => {
                if let Some(i) = init {
                    self.stmt(i)?;
                }
                let head = self.b.fresh_label();
                let lt = self.b.fresh_label();
                let lf = self.b.fresh_label();
                let cont = self.b.fresh_label();
                self.b.bind(head);
                match cond {
                    Some(c) => self.branch(c, lt, lf)?,
                    None => {
                        self.b.jmp(lt);
                    }
                }
                self.b.bind(lt);
                self.loop_stack.push((lf, cont));
                self.stmts(body)?;
                self.loop_stack.pop();
                self.b.bind(cont);
                if let Some(st) = step {
                    self.stmt(st)?;
                }
                self.b.jmp(head);
                self.b.bind(lf);
            }
            Stmt::Return { value, .. } => {
                match value {
                    Some(e) => {
                        self.eval(e)?;
                        let t = self.top();
                        self.pop(1);
                        self.b.mov(Reg::RV, t);
                    }
                    None => {
                        self.b.ldc(Reg::RV, 0);
                    }
                }
                self.b.ret();
            }
            Stmt::Break { line } => {
                let (brk, _) = *self
                    .loop_stack
                    .last()
                    .ok_or_else(|| CompileError::new(*line, "break outside a loop"))?;
                self.b.jmp(brk);
            }
            Stmt::Continue { line } => {
                let (_, cont) = *self
                    .loop_stack
                    .last()
                    .ok_or_else(|| CompileError::new(*line, "continue outside a loop"))?;
                self.b.jmp(cont);
            }
            Stmt::ExprStmt { expr, .. } => {
                self.eval(expr)?;
                self.pop(1);
            }
        }
        Ok(())
    }
}

fn collect_locals(
    body: &[Stmt],
    locals: &mut HashMap<String, u32>,
    next: &mut u32,
) -> Result<(), CompileError> {
    for s in body {
        match s {
            Stmt::Decl { name, line, .. } => {
                if locals.insert(name.clone(), *next).is_some() {
                    return Err(CompileError::new(
                        *line,
                        format!("duplicate local {name} (shadowing is not supported)"),
                    ));
                }
                *next += 1;
            }
            Stmt::If { then_branch, else_branch, .. } => {
                collect_locals(then_branch, locals, next)?;
                collect_locals(else_branch, locals, next)?;
            }
            Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => {
                collect_locals(body, locals, next)?;
            }
            Stmt::For { init, step, body, .. } => {
                if let Some(i) = init {
                    collect_locals(std::slice::from_ref(i), locals, next)?;
                }
                if let Some(st) = step {
                    collect_locals(std::slice::from_ref(st), locals, next)?;
                }
                collect_locals(body, locals, next)?;
            }
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;

    fn compile(src: &str, entry: &str) -> Result<Program, CompileError> {
        compile_module(&parse_module(src).unwrap(), entry)
    }

    #[test]
    fn globals_get_distinct_addresses() {
        let p = compile("int a; int b[3]; int c; int main() { return 0; }", "main").unwrap();
        let a = p.global_by_name("a").unwrap();
        let b = p.global_by_name("b").unwrap();
        let c = p.global_by_name("c").unwrap();
        assert_eq!(a.addr, 0);
        assert_eq!(b.addr, 1);
        assert_eq!(b.words, 3);
        assert_eq!(c.addr, 4);
    }

    #[test]
    fn entry_resolution() {
        let p = compile("int f() { return 1; } int g() { return 2; }", "g").unwrap();
        assert_eq!(p.entry_function().name, "g");
        assert!(compile("int f() { return 1; }", "zzz").is_err());
    }

    #[test]
    fn semantic_errors() {
        assert!(compile("int f() { return x; }", "f").unwrap_err().message.contains("unknown"));
        assert!(compile("int f() { break; }", "f").unwrap_err().message.contains("break"));
        assert!(compile("const C = 1; int f() { C = 2; return 0; }", "f")
            .unwrap_err()
            .message
            .contains("constant"));
        assert!(compile("int f(int a) { return f(1, 2); }", "f")
            .unwrap_err()
            .message
            .contains("arguments"));
        assert!(compile("int f() { int a; int a; return 0; }", "f")
            .unwrap_err()
            .message
            .contains("duplicate local"));
        assert!(compile("int a[2]; int f() { return a; }", "f")
            .unwrap_err()
            .message
            .contains("index"));
    }

    #[test]
    fn frame_sizes_cover_locals() {
        let p =
            compile("int f(int a, int b) { int c; int d = 1; return a + b + d; }", "f").unwrap();
        assert!(p.functions[0].frame_words >= 4);
        assert_eq!(p.functions[0].num_params, 2);
    }

    #[test]
    fn programs_validate() {
        let p = compile(
            "int N = 5;
             int sq(int x) { return x * x; }
             int main() {
                 int s = 0;
                 int i;
                 for (i = 0; i < N; i = i + 1) { s = s + sq(i); }
                 return s;
             }",
            "main",
        )
        .unwrap();
        assert!(p.validate().is_ok());
        assert_eq!(p.functions.len(), 2);
    }
}
