//! Recursive-descent parser for mini-C.

use crate::ast::*;
use crate::lexer::{lex, CompileError, Tok};

/// Parses a source file into a [`Module`].
///
/// # Errors
///
/// Returns a [`CompileError`] with the offending line.
pub fn parse_module(src: &str) -> Result<Module, CompileError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0, consts: Vec::new() };
    p.module()
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    /// Constants seen so far, for folding array sizes and initializers.
    consts: Vec<(String, i64)>,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|(t, _)| t)
    }

    fn line(&self) -> usize {
        self.toks.get(self.pos.min(self.toks.len().saturating_sub(1))).map(|(_, l)| *l).unwrap_or(0)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn err(&self, msg: impl Into<String>) -> CompileError {
        CompileError::new(self.line(), msg.into())
    }

    fn expect(&mut self, want: Tok) -> Result<(), CompileError> {
        match self.bump() {
            Some(t) if t == want => Ok(()),
            Some(t) => Err(self.err(format!("expected `{want}`, found `{t}`"))),
            None => Err(self.err(format!("expected `{want}`, found end of file"))),
        }
    }

    fn ident(&mut self) -> Result<String, CompileError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            Some(t) => Err(self.err(format!("expected identifier, found `{t}`"))),
            None => Err(self.err("expected identifier, found end of file")),
        }
    }

    fn const_value(&self, name: &str) -> Option<i64> {
        self.consts.iter().rev().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// A compile-time integer: literal, named constant, or unary minus.
    fn const_int(&mut self) -> Result<i64, CompileError> {
        match self.bump() {
            Some(Tok::Num(n)) => Ok(n),
            Some(Tok::Minus) => Ok(-self.const_int()?),
            Some(Tok::Ident(name)) => self
                .const_value(&name)
                .ok_or_else(|| self.err(format!("`{name}` is not a known constant"))),
            other => Err(self.err(format!(
                "expected a constant integer, found `{}`",
                other.map(|t| t.to_string()).unwrap_or_else(|| "end of file".into())
            ))),
        }
    }

    fn module(&mut self) -> Result<Module, CompileError> {
        let mut items = Vec::new();
        while self.peek().is_some() {
            match self.peek() {
                Some(Tok::Const) => {
                    let line = self.line();
                    self.bump();
                    let name = self.ident()?;
                    self.expect(Tok::Assign)?;
                    let value = self.const_int()?;
                    self.expect(Tok::Semi)?;
                    self.consts.push((name.clone(), value));
                    items.push(Item::Const { name, value, line });
                }
                Some(Tok::Int) => {
                    let line = self.line();
                    self.bump();
                    let name = self.ident()?;
                    match self.peek() {
                        Some(Tok::LParen) => {
                            items.push(Item::Func(self.func_rest(name, line)?));
                        }
                        Some(Tok::LBracket) => {
                            self.bump();
                            let words = self.const_int()?;
                            if words <= 0 {
                                return Err(self.err("array size must be positive"));
                            }
                            self.expect(Tok::RBracket)?;
                            let mut init = Vec::new();
                            if self.peek() == Some(&Tok::Assign) {
                                self.bump();
                                self.expect(Tok::LBrace)?;
                                if self.peek() != Some(&Tok::RBrace) {
                                    loop {
                                        init.push(self.const_int()?);
                                        if self.peek() == Some(&Tok::Comma) {
                                            self.bump();
                                        } else {
                                            break;
                                        }
                                    }
                                }
                                self.expect(Tok::RBrace)?;
                            }
                            self.expect(Tok::Semi)?;
                            if init.len() as i64 > words {
                                return Err(self.err("more initializers than array elements"));
                            }
                            items.push(Item::GlobalArray { name, words: words as u32, init, line });
                        }
                        _ => {
                            let mut init = 0i64;
                            if self.peek() == Some(&Tok::Assign) {
                                self.bump();
                                init = self.const_int()?;
                            }
                            self.expect(Tok::Semi)?;
                            items.push(Item::GlobalScalar { name, init, line });
                        }
                    }
                }
                Some(t) => {
                    return Err(self.err(format!("expected `int` or `const` item, found `{t}`")))
                }
                None => break,
            }
        }
        Ok(Module { items })
    }

    fn func_rest(&mut self, name: String, line: usize) -> Result<FuncDecl, CompileError> {
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                self.expect(Tok::Int)?;
                params.push(self.ident()?);
                if self.peek() == Some(&Tok::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        if params.len() > 4 {
            return Err(self.err("functions take at most four parameters"));
        }
        let body = self.block()?;
        Ok(FuncDecl { name, params, body, line })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect(Tok::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != Some(&Tok::RBrace) {
            if self.peek().is_none() {
                return Err(self.err("unterminated block"));
            }
            stmts.push(self.stmt()?);
        }
        self.expect(Tok::RBrace)?;
        Ok(stmts)
    }

    /// A statement or a `{ ... }` block flattened into statements.
    fn stmt_or_block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        if self.peek() == Some(&Tok::LBrace) {
            self.block()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        match self.peek() {
            Some(Tok::Int) => {
                self.bump();
                let name = self.ident()?;
                let init = if self.peek() == Some(&Tok::Assign) {
                    self.bump();
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(Tok::Semi)?;
                Ok(Stmt::Decl { name, init, line })
            }
            Some(Tok::If) => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let then_branch = self.stmt_or_block()?;
                let else_branch = if self.peek() == Some(&Tok::Else) {
                    self.bump();
                    self.stmt_or_block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If { cond, then_branch, else_branch, line })
            }
            Some(Tok::While) => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let body = self.stmt_or_block()?;
                Ok(Stmt::While { cond, body, line })
            }
            Some(Tok::Do) => {
                self.bump();
                let body = self.stmt_or_block()?;
                self.expect(Tok::While)?;
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::DoWhile { body, cond, line })
            }
            Some(Tok::For) => {
                self.bump();
                self.expect(Tok::LParen)?;
                let init = if self.peek() == Some(&Tok::Semi) {
                    self.bump();
                    None
                } else {
                    let s = self.simple_stmt()?; // consumes the `;`
                    Some(Box::new(s))
                };
                let cond = if self.peek() == Some(&Tok::Semi) { None } else { Some(self.expr()?) };
                self.expect(Tok::Semi)?;
                let step = if self.peek() == Some(&Tok::RParen) {
                    None
                } else {
                    Some(Box::new(self.assign_like()?))
                };
                self.expect(Tok::RParen)?;
                let body = self.stmt_or_block()?;
                Ok(Stmt::For { init, cond, step, body, line })
            }
            Some(Tok::Return) => {
                self.bump();
                let value = if self.peek() == Some(&Tok::Semi) { None } else { Some(self.expr()?) };
                self.expect(Tok::Semi)?;
                Ok(Stmt::Return { value, line })
            }
            Some(Tok::Break) => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(Stmt::Break { line })
            }
            Some(Tok::Continue) => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(Stmt::Continue { line })
            }
            _ => self.simple_stmt(),
        }
    }

    /// Assignment / declaration-free statement ending in `;`.
    fn simple_stmt(&mut self) -> Result<Stmt, CompileError> {
        if self.peek() == Some(&Tok::Int) {
            // allow `for (int i = 0; ...)`
            let line = self.line();
            self.bump();
            let name = self.ident()?;
            self.expect(Tok::Assign)?;
            let init = Some(self.expr()?);
            self.expect(Tok::Semi)?;
            return Ok(Stmt::Decl { name, init, line });
        }
        let s = self.assign_like()?;
        self.expect(Tok::Semi)?;
        Ok(s)
    }

    /// Assignment or expression statement, without the trailing `;`
    /// (used by `for` steps).
    fn assign_like(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        // Lookahead: IDENT `=` / IDENT `[` ... `]` `=` are assignments.
        if let (Some(Tok::Ident(name)), Some(next)) = (self.peek().cloned(), self.peek2()) {
            let desugar = |op: BinOp, name: &str, rhs: Expr, line: usize| Stmt::Assign {
                name: name.to_string(),
                value: Expr {
                    kind: ExprKind::Binary(
                        op,
                        Box::new(Expr { kind: ExprKind::Var(name.to_string()), line }),
                        Box::new(rhs),
                    ),
                    line,
                },
                line,
            };
            match next {
                Tok::Assign => {
                    self.bump();
                    self.bump();
                    let value = self.expr()?;
                    return Ok(Stmt::Assign { name, value, line });
                }
                Tok::PlusEq | Tok::MinusEq | Tok::StarEq | Tok::SlashEq => {
                    let op = match next {
                        Tok::PlusEq => BinOp::Add,
                        Tok::MinusEq => BinOp::Sub,
                        Tok::StarEq => BinOp::Mul,
                        _ => BinOp::Div,
                    };
                    self.bump();
                    self.bump();
                    let rhs = self.expr()?;
                    return Ok(desugar(op, &name, rhs, line));
                }
                Tok::PlusPlus | Tok::MinusMinus => {
                    let op = if *next == Tok::PlusPlus { BinOp::Add } else { BinOp::Sub };
                    self.bump();
                    self.bump();
                    return Ok(desugar(op, &name, Expr { kind: ExprKind::Num(1), line }, line));
                }
                Tok::LBracket => {
                    // Could be `a[i] = v` or the expression `a[i]` — scan
                    // for the matching `]` and check for `=`.
                    let save = self.pos;
                    self.bump(); // ident
                    self.bump(); // [
                    let mut depth = 1usize;
                    let mut scan = self.pos;
                    while depth > 0 {
                        match self.toks.get(scan).map(|(t, _)| t) {
                            Some(Tok::LBracket) => depth += 1,
                            Some(Tok::RBracket) => depth -= 1,
                            Some(_) => {}
                            None => return Err(self.err("unterminated index")),
                        }
                        scan += 1;
                    }
                    if self.toks.get(scan).map(|(t, _)| t) == Some(&Tok::Assign) {
                        let index = self.expr()?;
                        self.expect(Tok::RBracket)?;
                        self.expect(Tok::Assign)?;
                        let value = self.expr()?;
                        return Ok(Stmt::AssignIndex { name, index, value, line });
                    }
                    self.pos = save;
                }
                _ => {}
            }
        }
        // Prefix increment/decrement as a statement: ++i; / --i;
        if matches!(self.peek(), Some(Tok::PlusPlus) | Some(Tok::MinusMinus)) {
            let op = if self.peek() == Some(&Tok::PlusPlus) { BinOp::Add } else { BinOp::Sub };
            self.bump();
            let name = self.ident()?;
            return Ok(Stmt::Assign {
                name: name.clone(),
                value: Expr {
                    kind: ExprKind::Binary(
                        op,
                        Box::new(Expr { kind: ExprKind::Var(name), line }),
                        Box::new(Expr { kind: ExprKind::Num(1), line }),
                    ),
                    line,
                },
                line,
            });
        }
        let expr = self.expr()?;
        Ok(Stmt::ExprStmt { expr, line })
    }

    // Expression parsing: precedence climbing.

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.binary(0)
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, CompileError> {
        let mut lhs = self.unary()?;
        loop {
            let (op, prec) = match self.peek() {
                Some(Tok::PipePipe) => (BinOp::LOr, 1),
                Some(Tok::AmpAmp) => (BinOp::LAnd, 2),
                Some(Tok::Pipe) => (BinOp::Or, 3),
                Some(Tok::Caret) => (BinOp::Xor, 4),
                Some(Tok::Amp) => (BinOp::And, 5),
                Some(Tok::EqEq) => (BinOp::Eq, 6),
                Some(Tok::Ne) => (BinOp::Ne, 6),
                Some(Tok::Lt) => (BinOp::Lt, 7),
                Some(Tok::Le) => (BinOp::Le, 7),
                Some(Tok::Gt) => (BinOp::Gt, 7),
                Some(Tok::Ge) => (BinOp::Ge, 7),
                Some(Tok::Shl) => (BinOp::Shl, 8),
                Some(Tok::Shr) => (BinOp::Shr, 8),
                Some(Tok::Plus) => (BinOp::Add, 9),
                Some(Tok::Minus) => (BinOp::Sub, 9),
                Some(Tok::Star) => (BinOp::Mul, 10),
                Some(Tok::Slash) => (BinOp::Div, 10),
                Some(Tok::Percent) => (BinOp::Rem, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            let line = self.line();
            self.bump();
            let rhs = self.binary(prec + 1)?;
            lhs = Expr { kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), line };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.peek() {
            Some(Tok::Minus) => {
                self.bump();
                let inner = self.unary()?;
                Ok(Expr { kind: ExprKind::Unary(UnOp::Neg, Box::new(inner)), line })
            }
            Some(Tok::Not) => {
                self.bump();
                let inner = self.unary()?;
                Ok(Expr { kind: ExprKind::Unary(UnOp::Not, Box::new(inner)), line })
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.bump() {
            Some(Tok::Num(n)) => Ok(Expr { kind: ExprKind::Num(n), line }),
            Some(Tok::LParen) => {
                let inner = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(inner)
            }
            Some(Tok::Ident(name)) => match self.peek() {
                Some(Tok::LParen) => {
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek() != Some(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.peek() == Some(&Tok::Comma) {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen)?;
                    Ok(Expr { kind: ExprKind::Call(name, args), line })
                }
                Some(Tok::LBracket) => {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(Tok::RBracket)?;
                    Ok(Expr { kind: ExprKind::Index(name, Box::new(idx)), line })
                }
                _ => Ok(Expr { kind: ExprKind::Var(name), line }),
            },
            other => Err(CompileError::new(
                line,
                format!(
                    "expected an expression, found `{}`",
                    other.map(|t| t.to_string()).unwrap_or_else(|| "end of file".into())
                ),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_globals_consts_and_functions() {
        let m = parse_module(
            "const N = 4;
             int total = 7;
             int data[N] = {1, 2, 3};
             int f(int a, int b) { return a + b; }",
        )
        .unwrap();
        assert_eq!(m.items.len(), 4);
        assert!(matches!(m.items[0], Item::Const { value: 4, .. }));
        assert!(matches!(m.items[1], Item::GlobalScalar { init: 7, .. }));
        match &m.items[2] {
            Item::GlobalArray { words, init, .. } => {
                assert_eq!(*words, 4);
                assert_eq!(init, &vec![1, 2, 3]);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(m.functions().count(), 1);
    }

    #[test]
    fn precedence_is_c_like() {
        let m = parse_module("int f() { return 1 + 2 * 3 < 4 && 5 == 6; }").unwrap();
        let f = m.functions().next().unwrap();
        let Stmt::Return { value: Some(e), .. } = &f.body[0] else { panic!() };
        // && at the top
        let ExprKind::Binary(BinOp::LAnd, l, r) = &e.kind else { panic!("{e:?}") };
        assert!(matches!(l.kind, ExprKind::Binary(BinOp::Lt, _, _)));
        assert!(matches!(r.kind, ExprKind::Binary(BinOp::Eq, _, _)));
    }

    #[test]
    fn statements_roundtrip() {
        let m = parse_module(
            "int g;
             int a[8];
             int f(int n) {
                 int i;
                 for (i = 0; i < n; i = i + 1) {
                     a[i] = i;
                     if (a[i] > 3) break; else continue;
                 }
                 do { g = g - 1; } while (g > 0);
                 while (n) { n = n - 1; }
                 f(0);
                 return g;
             }",
        )
        .unwrap();
        let f = m.functions().next().unwrap();
        assert_eq!(f.body.len(), 6);
        assert!(matches!(f.body[1], Stmt::For { .. }));
        assert!(matches!(f.body[2], Stmt::DoWhile { .. }));
        assert!(matches!(f.body[4], Stmt::ExprStmt { .. }));
    }

    #[test]
    fn for_with_decl_init() {
        let m =
            parse_module("int f() { for (int i = 0; i < 3; i = i + 1) { } return 0; }").unwrap();
        let f = m.functions().next().unwrap();
        let Stmt::For { init: Some(init), .. } = &f.body[0] else { panic!() };
        assert!(matches!(**init, Stmt::Decl { .. }));
    }

    #[test]
    fn array_read_vs_write_disambiguation() {
        let m = parse_module("int a[4]; int f() { a[a[0]] = a[1]; return a[2]; }").unwrap();
        let f = m.functions().next().unwrap();
        assert!(matches!(f.body[0], Stmt::AssignIndex { .. }));
    }

    #[test]
    fn const_in_array_size_and_negative_init() {
        let m = parse_module("const N = 3; int a[N] = {-1, -2};").unwrap();
        match &m.items[1] {
            Item::GlobalArray { words, init, .. } => {
                assert_eq!(*words, 3);
                assert_eq!(init, &vec![-1, -2]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_carry_lines() {
        let err = parse_module("int f() {\n  return 1 +;\n}").unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse_module("int a[0];").unwrap_err();
        assert!(err.message.contains("positive"));
        let err =
            parse_module("int f(int a, int b, int c, int d, int e) { return 0; }").unwrap_err();
        assert!(err.message.contains("four parameters"));
        let err = parse_module("int a[2] = {1,2,3};").unwrap_err();
        assert!(err.message.contains("initializers"));
    }

    #[test]
    fn unknown_constant_is_an_error() {
        let err = parse_module("int a[SIZE];").unwrap_err();
        assert!(err.message.contains("SIZE"));
    }
}

#[cfg(test)]
mod sugar_tests {
    use super::*;

    fn body_of(src: &str) -> Vec<Stmt> {
        parse_module(src).unwrap().functions().next().unwrap().body.clone()
    }

    #[test]
    fn compound_assignment_desugars() {
        let body = body_of("int f(int x) { x += 3; x -= 1; x *= 2; x /= 4; return x; }");
        for (i, op) in [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div].iter().enumerate() {
            let Stmt::Assign { name, value, .. } = &body[i] else { panic!() };
            assert_eq!(name, "x");
            let ExprKind::Binary(got, lhs, _) = &value.kind else { panic!() };
            assert_eq!(got, op);
            assert!(matches!(&lhs.kind, ExprKind::Var(v) if v == "x"));
        }
    }

    #[test]
    fn increment_statements_desugar() {
        let body = body_of("int f(int i) { i++; ++i; i--; --i; return i; }");
        assert_eq!(body.len(), 5);
        for stmt in &body[..4] {
            let Stmt::Assign { value, .. } = stmt else { panic!("{stmt:?}") };
            assert!(matches!(&value.kind, ExprKind::Binary(_, _, rhs)
                if matches!(rhs.kind, ExprKind::Num(1))));
        }
    }

    #[test]
    fn for_step_accepts_sugar() {
        let body = body_of(
            "int f() { int i; int s; s = 0; for (i = 0; i < 5; i++) { s += i; } return s; }",
        );
        assert!(matches!(body[3], Stmt::For { .. }), "{body:?}");
    }

    #[test]
    fn sugar_executes_correctly() {
        let p = crate::compile(
            "int f(int n) { int s; s = 0; for (int i = 0; i < n; ++i) { s += i * 2; } return s; }",
            "f",
        )
        .unwrap();
        assert!(p.validate().is_ok());
    }
}
