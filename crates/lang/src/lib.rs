//! # ipet-lang
//!
//! `mcc` — a mini-C frontend and code generator targeting the
//! [`ipet_arch`] instruction set. The paper analyses i960 executables
//! produced by a C compiler; this crate plays that compiler's role so the
//! benchmark suite can be written at the source level ("the high-level
//! language program is the right place to provide useful annotations ...
//! the final analysis must be performed on the assembly language
//! program").
//!
//! ## Language
//!
//! A deterministic, analysis-friendly C subset:
//!
//! * `int` scalars (32-bit) and global `int` arrays;
//! * `const NAME = <int>;` compile-time constants;
//! * functions of up to four `int` parameters returning `int`;
//! * `if`/`else`, `while`, `do`/`while`, `for`, `break`, `continue`,
//!   `return`;
//! * compound assignment (`+=`, `-=`, `*=`, `/=`) and statement-position
//!   increment/decrement (`i++`, `++i`, `i--`, `--i`);
//! * expressions with the usual C operators, including short-circuit
//!   `&&`/`||` (compiled to branches, exactly the CFG shapes of the
//!   paper's figures).
//!
//! There are no pointers, no recursion and no dynamic allocation — the
//! decidability restrictions the paper adopts (§II).
//!
//! ## Example
//!
//! ```
//! use ipet_lang::compile;
//!
//! let program = compile(
//!     "int twice(int x) { return 2 * x; }
//!      int main() { return twice(21); }",
//!     "main",
//! ).unwrap();
//! assert_eq!(program.functions.len(), 2);
//! ```

mod ast;
mod codegen;
mod lexer;
mod opt;
mod parser;

pub use ast::{BinOp, Expr, ExprKind, FuncDecl, Item, Module, Stmt, UnOp};
pub use codegen::compile_module;
pub use lexer::CompileError;
pub use opt::{optimize_function, optimize_program, OptLevel};
pub use parser::parse_module;

use ipet_arch::Program;

/// Compiles mini-C source into an executable [`Program`] with `entry` as
/// the analysed/executed routine, without optimisation ([`OptLevel::O0`]).
///
/// # Errors
///
/// Returns a [`CompileError`] carrying the source line for lexing, parsing,
/// semantic and code-generation failures (including an unknown entry name).
pub fn compile(source: &str, entry: &str) -> Result<Program, CompileError> {
    compile_with(source, entry, OptLevel::O0)
}

/// Compiles with an explicit optimisation level.
///
/// # Errors
///
/// See [`compile`].
pub fn compile_with(source: &str, entry: &str, level: OptLevel) -> Result<Program, CompileError> {
    ipet_trace::counter("lang.compile.calls", 1);
    let module = {
        let _span = ipet_trace::span("lang.parse");
        parse_module(source)?
    };
    let mut program = {
        let _span = ipet_trace::span("lang.codegen");
        compile_module(&module, entry)?
    };
    if level == OptLevel::O1 {
        optimize_program(&mut program);
    }
    ipet_trace::counter("lang.functions", program.functions.len() as u64);
    let instrs: usize = program.functions.iter().map(|f| f.instrs.len()).sum();
    ipet_trace::counter("lang.instructions", instrs as u64);
    Ok(program)
}
