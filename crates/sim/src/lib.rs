//! # ipet-sim
//!
//! A deterministic functional + timing simulator for [`ipet_arch`]
//! programs, standing in for the paper's Intel QT960 measurement board.
//!
//! Two signals are produced, matching the paper's two experiments:
//!
//! * **Block execution counts** (`Experiment 1`): running the routine on an
//!   identified extreme-case data set yields the counter values that, when
//!   multiplied by the per-block cost bounds, give the *calculated bound*.
//! * **Measured cycles** (`Experiment 2`): a cycle-level model of the
//!   4-stage pipeline and the 512-byte direct-mapped i-cache gives the
//!   *measured bound*; the cache is flushed before the worst-case run and
//!   left warm for the best-case run, exactly like the paper's measurement
//!   protocol.
//!
//! The timing model is intentionally the same [`Machine`] description the
//! static analysis uses, so `best <= measured <= worst` holds by
//! construction (the static bounds assume all-hit / all-miss extremes of
//! the very same model).
//!
//! ## Example
//!
//! ```
//! use ipet_sim::{Machine, SimConfig, Simulator};
//!
//! let program = ipet_lang::compile(
//!     "int main(int n) { return n * n; }",
//!     "main",
//! ).unwrap();
//! let mut sim = Simulator::new(&program, Machine::i960kb(), SimConfig::default());
//! let result = sim.run(&[7]).unwrap();
//! assert_eq!(result.return_value, 49);
//! assert!(result.cycles > 0);
//! ```

mod exec;
mod profile;

pub use exec::{SimConfig, SimError, SimResult, Simulator, TraceEvent};
pub use profile::{measure, BlockCounts};

// Re-exported for callers configuring the simulated machine.
pub use ipet_hw::Machine;
