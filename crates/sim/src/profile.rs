//! Measurement protocol helpers mirroring the paper's Experiment 2.

use crate::exec::{SimConfig, SimError, SimResult, Simulator};
use ipet_arch::{FuncId, Program};
use ipet_cfg::BlockId;
use ipet_hw::Machine;
use std::collections::BTreeMap;

/// Per-(function, block) execution counters from one run.
pub type BlockCounts = BTreeMap<(FuncId, BlockId), u64>;

/// One measured run under the paper's protocol.
///
/// * `cold = true` — worst-case protocol: globals seeded, cache flushed,
///   one timed run.
/// * `cold = false` — best-case protocol: a warm-up run primes the cache
///   (globals re-seeded between runs), then the timed run executes with a
///   warm cache, like the paper's repeated-loop measurement without a
///   flush.
///
/// `seeds` assigns input data to globals by name; `args` are the entry
/// function's register arguments.
///
/// # Errors
///
/// Propagates any [`SimError`] from seeding or execution.
pub fn measure(
    program: &Program,
    machine: Machine,
    seeds: &[(&str, Vec<i32>)],
    args: &[i32],
    cold: bool,
) -> Result<SimResult, SimError> {
    let config = SimConfig { flush_cache: false, ..SimConfig::default() };
    let mut sim = Simulator::new(program, machine, config);
    sim.flush_icache();
    if !cold {
        sim.reset_data();
        for (name, data) in seeds {
            sim.seed_global(name, data)?;
        }
        sim.run(args)?; // warm-up
    }
    sim.reset_data();
    for (name, data) in seeds {
        sim.seed_global(name, data)?;
    }
    sim.run(args)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipet_arch::{AluOp, AsmBuilder, Cond, Global, Reg};

    fn summing_program() -> Program {
        // rv = sum(data[0..8])
        let g = Global { name: "data".into(), addr: 0, words: 8, init: vec![1; 8] };
        let mut b = AsmBuilder::new("main");
        let head = b.fresh_label();
        let out = b.fresh_label();
        b.ldc(Reg::RV, 0);
        b.ldc(Reg::T0, 0);
        b.bind(head);
        b.br(Cond::Ge, Reg::T0, 8, out);
        b.ld(Reg::temp(1), Reg::T0, 0);
        b.alu(AluOp::Add, Reg::RV, Reg::RV, Reg::temp(1));
        b.alu(AluOp::Add, Reg::T0, Reg::T0, 1);
        b.jmp(head);
        b.bind(out);
        b.ret();
        Program::new(vec![b.finish().unwrap()], vec![g], FuncId(0)).unwrap()
    }

    #[test]
    fn cold_run_slower_than_warm_run() {
        let p = summing_program();
        let m = Machine::i960kb();
        let cold = measure(&p, m, &[("data", vec![2; 8])], &[], true).unwrap();
        let warm = measure(&p, m, &[("data", vec![2; 8])], &[], false).unwrap();
        assert_eq!(cold.return_value, 16);
        assert_eq!(warm.return_value, 16);
        assert!(cold.cycles > warm.cycles);
        assert_eq!(warm.icache_misses, 0);
    }

    #[test]
    fn seeds_are_reapplied_after_warmup() {
        let p = summing_program();
        let m = Machine::i960kb();
        // If the warm-up consumed the seed without re-seeding, the timed
        // run would see zeroed data and return 0.
        let warm = measure(&p, m, &[("data", vec![3; 8])], &[], false).unwrap();
        assert_eq!(warm.return_value, 24);
    }
}
