//! The instruction-level executor with cycle accounting.

use ipet_arch::{FuncId, Instr, Operand, Program, Reg, INSTR_BYTES};
use ipet_cfg::{BlockId, Cfg};
use ipet_hw::{instr_cycles, Machine};
use std::collections::BTreeMap;
use std::fmt;

/// Simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Instruction budget; exceeding it aborts the run (runaway guard).
    pub max_steps: u64,
    /// Stack region size in words, placed above all globals.
    pub stack_words: u32,
    /// Flush the i-cache before the run (the paper's worst-case protocol).
    pub flush_cache: bool,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig { max_steps: 200_000_000, stack_words: 4096, flush_cache: true }
    }
}

/// Errors during simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The instruction budget was exhausted (likely an unbounded loop).
    OutOfFuel { steps: u64 },
    /// A data access fell outside data memory.
    MemOutOfBounds { func: String, pc: usize, addr: i64 },
    /// The hardware call stack overflowed.
    CallDepthExceeded { depth: usize },
    /// A named global was not found when seeding input data.
    NoSuchGlobal(String),
    /// Seed data longer than the global it targets.
    SeedTooLong { global: String, len: usize, words: u32 },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfFuel { steps } => write!(f, "out of fuel after {steps} steps"),
            SimError::MemOutOfBounds { func, pc, addr } => {
                write!(f, "memory access out of bounds at {func}:{pc} (word address {addr})")
            }
            SimError::CallDepthExceeded { depth } => {
                write!(f, "call depth exceeded {depth}")
            }
            SimError::NoSuchGlobal(n) => write!(f, "no global named {n}"),
            SimError::SeedTooLong { global, len, words } => {
                write!(f, "seed of {len} words does not fit global {global} ({words} words)")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// One basic-block entry observed during a traced run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Function being executed.
    pub func: FuncId,
    /// Block entered.
    pub block: BlockId,
    /// Cycle count at block entry.
    pub cycle: u64,
}

/// Outcome of a completed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimResult {
    /// Total simulated cycles (pipeline + i-cache model).
    pub cycles: u64,
    /// Instructions executed.
    pub steps: u64,
    /// Value of the return-value register at termination.
    pub return_value: i32,
    /// Per-(function, block) execution counters, the paper's Experiment-1
    /// instrumentation.
    pub block_counts: BTreeMap<(FuncId, BlockId), u64>,
    /// I-cache misses observed.
    pub icache_misses: u64,
}

/// A reusable simulator instance.
///
/// Construction precomputes each function's CFG (for block counting) and
/// loads globals into data memory. Between runs, [`Simulator::reset_data`]
/// restores globals and [`Simulator::seed_global`] injects input data sets.
#[derive(Debug, Clone)]
pub struct Simulator<'p> {
    program: &'p Program,
    machine: Machine,
    config: SimConfig,
    cfgs: Vec<Cfg>,
    /// leader_block[f][i] = Some(block) if instruction i leads a block of f.
    leader_block: Vec<BTreeMap<usize, BlockId>>,
    mem: Vec<i32>,
    /// Direct-mapped i-cache: tag (memory line index) per set.
    icache: Vec<Option<u32>>,
    /// Direct-mapped data cache, when the machine has one.
    dcache: Vec<Option<u32>>,
    max_call_depth: usize,
}

impl<'p> Simulator<'p> {
    /// Creates a simulator for `program`.
    pub fn new(program: &'p Program, machine: Machine, config: SimConfig) -> Simulator<'p> {
        let cfgs: Vec<Cfg> =
            program.functions.iter().enumerate().map(|(i, f)| Cfg::build(FuncId(i), f)).collect();
        let leader_block = cfgs
            .iter()
            .map(|cfg| {
                cfg.blocks.iter().enumerate().map(|(b, blk)| (blk.start, BlockId(b))).collect()
            })
            .collect();
        let mem_words = (program.data_words() + config.stack_words) as usize;
        let dcache_sets = machine.dcache.map(|g| g.num_lines() as usize).unwrap_or(0);
        let mut sim = Simulator {
            program,
            machine,
            config,
            cfgs,
            leader_block,
            mem: vec![0; mem_words],
            icache: vec![None; machine.icache.num_lines() as usize],
            dcache: vec![None; dcache_sets],
            max_call_depth: 1024,
        };
        sim.reset_data();
        sim
    }

    /// Restores all globals to their initial values and zeroes the rest of
    /// data memory (stack included).
    pub fn reset_data(&mut self) {
        self.mem.fill(0);
        for g in &self.program.globals {
            for (i, &v) in g.init.iter().enumerate() {
                self.mem[g.addr as usize + i] = v;
            }
        }
    }

    /// Overwrites the contents of global `name` with `values`.
    ///
    /// # Errors
    ///
    /// Fails if the global does not exist or `values` is too long.
    pub fn seed_global(&mut self, name: &str, values: &[i32]) -> Result<(), SimError> {
        let g = self
            .program
            .global_by_name(name)
            .ok_or_else(|| SimError::NoSuchGlobal(name.to_string()))?;
        if values.len() as u32 > g.words {
            return Err(SimError::SeedTooLong {
                global: name.to_string(),
                len: values.len(),
                words: g.words,
            });
        }
        let base = g.addr as usize;
        self.mem[base..base + values.len()].copy_from_slice(values);
        Ok(())
    }

    /// Reads back `words` words of global `name` (for functional checks).
    ///
    /// # Errors
    ///
    /// Fails if the global does not exist.
    pub fn read_global(&self, name: &str, words: usize) -> Result<Vec<i32>, SimError> {
        let g = self
            .program
            .global_by_name(name)
            .ok_or_else(|| SimError::NoSuchGlobal(name.to_string()))?;
        let base = g.addr as usize;
        let n = words.min(g.words as usize);
        Ok(self.mem[base..base + n].to_vec())
    }

    /// Invalidates the entire i-cache (and the data cache, if any).
    pub fn flush_icache(&mut self) {
        self.icache.fill(None);
        self.dcache.fill(None);
    }

    /// Data-cache lookup on a word address; returns the load penalty and
    /// fills the line on a miss. Zero when the machine has no data cache.
    fn daccess(&mut self, word_addr: u32) -> u64 {
        let Some(geom) = self.machine.dcache else {
            return 0;
        };
        let line = geom.line_of(word_addr * 4);
        let set = geom.set_of_line(line) as usize;
        if self.dcache[set] == Some(line) {
            0
        } else {
            self.dcache[set] = Some(line);
            self.machine.dmiss_penalty
        }
    }

    fn fetch(&mut self, addr: u32, misses: &mut u64) -> u64 {
        let geom = self.machine.icache;
        let line = geom.line_of(addr);
        let set = geom.set_of_line(line) as usize;
        if self.icache[set] == Some(line) {
            0
        } else {
            self.icache[set] = Some(line);
            *misses += 1;
            self.machine.miss_penalty
        }
    }

    /// Runs the program's entry function with the given register arguments.
    ///
    /// The i-cache is flushed first when [`SimConfig::flush_cache`] is set;
    /// call the method twice on one simulator with `flush_cache = false`
    /// to measure a warm-cache (best-case protocol) run.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn run(&mut self, args: &[i32]) -> Result<SimResult, SimError> {
        self.run_inner(args, &mut |_| {})
    }

    /// Like [`Simulator::run`], but additionally streams a [`TraceEvent`]
    /// at every basic-block entry (capped at `max_events`; later events
    /// are dropped silently, with the count still reported in the result).
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn run_traced(
        &mut self,
        args: &[i32],
        max_events: usize,
    ) -> Result<(SimResult, Vec<TraceEvent>), SimError> {
        let mut trace = Vec::new();
        let result = self.run_inner(args, &mut |ev| {
            if trace.len() < max_events {
                trace.push(ev);
            }
        })?;
        Ok((result, trace))
    }

    fn run_inner(
        &mut self,
        args: &[i32],
        on_block: &mut dyn FnMut(TraceEvent),
    ) -> Result<SimResult, SimError> {
        if self.config.flush_cache {
            self.flush_icache();
        }

        let mut regs = [0i32; Reg::COUNT];
        for (i, &a) in args.iter().enumerate().take(4) {
            regs[Reg::arg(i as u8).index()] = a;
        }
        let stack_top = self.mem.len() as i32;

        let mut func = self.program.entry;
        let mut pc = 0usize;
        let mut prev: Option<Instr> = None;

        // Hardware call/frame stack: (return func, return pc, saved sp, saved fp).
        let mut calls: Vec<(FuncId, usize, i32, i32)> = Vec::new();

        // Enter the entry frame.
        let entry_frame = self.program.functions[func.0].frame_words as i32;
        regs[Reg::SP.index()] = stack_top - entry_frame;
        regs[Reg::FP.index()] = regs[Reg::SP.index()];

        let mut cycles = 0u64;
        let mut steps = 0u64;
        let mut misses = 0u64;
        let mut counts: BTreeMap<(FuncId, BlockId), u64> = BTreeMap::new();

        loop {
            if steps >= self.config.max_steps {
                return Err(SimError::OutOfFuel { steps });
            }
            // Block accounting + pipeline window reset at block leaders.
            if let Some(&b) = self.leader_block[func.0].get(&pc) {
                *counts.entry((func, b)).or_insert(0) += 1;
                on_block(TraceEvent { func, block: b, cycle: cycles });
                prev = None;
            }

            let f = &self.program.functions[func.0];
            let ins = f.instrs[pc];
            cycles += self.fetch(f.instr_addr(pc), &mut misses);
            cycles += instr_cycles(&self.machine, prev, ins);
            steps += 1;

            let rd = |regs: &[i32; Reg::COUNT], r: Reg| -> i32 {
                if r == Reg::ZERO {
                    0
                } else {
                    regs[r.index()]
                }
            };
            let operand = |regs: &[i32; Reg::COUNT], o: Operand| -> i32 {
                match o {
                    Operand::Reg(r) => rd(regs, r),
                    Operand::Imm(i) => i,
                }
            };

            let mut next_pc = pc + 1;
            let mut transferred = false;
            match ins {
                Instr::Mov { dst, src } => {
                    let v = rd(&regs, src);
                    if dst != Reg::ZERO {
                        regs[dst.index()] = v;
                    }
                }
                Instr::Ldc { dst, imm } => {
                    if dst != Reg::ZERO {
                        regs[dst.index()] = imm;
                    }
                }
                Instr::Alu { op, dst, a, b } => {
                    let v = op.apply(rd(&regs, a), operand(&regs, b));
                    if dst != Reg::ZERO {
                        regs[dst.index()] = v;
                    }
                }
                Instr::Ld { dst, base, offset } => {
                    let addr = rd(&regs, base) as i64 + offset as i64;
                    if addr < 0 || addr as usize >= self.mem.len() {
                        return Err(SimError::MemOutOfBounds { func: f.name.clone(), pc, addr });
                    }
                    cycles += self.daccess(addr as u32);
                    if dst != Reg::ZERO {
                        regs[dst.index()] = self.mem[addr as usize];
                    }
                }
                Instr::St { src, base, offset } => {
                    let addr = rd(&regs, base) as i64 + offset as i64;
                    if addr < 0 || addr as usize >= self.mem.len() {
                        return Err(SimError::MemOutOfBounds { func: f.name.clone(), pc, addr });
                    }
                    self.mem[addr as usize] = rd(&regs, src);
                }
                Instr::Br { cond, a, b, target } => {
                    if cond.holds(rd(&regs, a), operand(&regs, b)) {
                        cycles += self.machine.branch_taken_penalty;
                        next_pc = target;
                        transferred = true;
                    }
                }
                Instr::Jmp { target } => {
                    next_pc = target;
                    transferred = true;
                }
                Instr::Call { func: callee } => {
                    if calls.len() >= self.max_call_depth {
                        return Err(SimError::CallDepthExceeded { depth: self.max_call_depth });
                    }
                    calls.push((func, pc + 1, regs[Reg::SP.index()], regs[Reg::FP.index()]));
                    let frame = self.program.functions[callee.0].frame_words as i32;
                    regs[Reg::SP.index()] -= frame;
                    regs[Reg::FP.index()] = regs[Reg::SP.index()];
                    func = callee;
                    next_pc = 0;
                    transferred = true;
                }
                Instr::Ret => match calls.pop() {
                    Some((rf, rpc, sp, fp)) => {
                        regs[Reg::SP.index()] = sp;
                        regs[Reg::FP.index()] = fp;
                        func = rf;
                        next_pc = rpc;
                        transferred = true;
                    }
                    None => {
                        return Ok(SimResult {
                            cycles,
                            steps,
                            return_value: regs[Reg::RV.index()],
                            block_counts: counts,
                            icache_misses: misses,
                        });
                    }
                },
                Instr::Nop => {}
            }

            prev = if transferred { None } else { Some(ins) };
            pc = next_pc;
        }
    }

    /// The per-function CFGs the simulator counts blocks against.
    pub fn cfgs(&self) -> &[Cfg] {
        &self.cfgs
    }

    /// Byte address of an instruction (for tests validating cache maths).
    pub fn instr_addr(&self, func: FuncId, pc: usize) -> u32 {
        self.program.functions[func.0].base_addr + pc as u32 * INSTR_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipet_arch::{AluOp, AsmBuilder, Cond, Global};

    fn prog(funcs: Vec<ipet_arch::Function>, globals: Vec<Global>, entry: usize) -> Program {
        Program::new(funcs, globals, FuncId(entry)).unwrap()
    }

    fn counting_loop(n: i32) -> Program {
        // rv = 0; for (t = 0; t < n; t++) rv += t;
        let mut b = AsmBuilder::new("main");
        let head = b.fresh_label();
        let out = b.fresh_label();
        b.ldc(Reg::RV, 0);
        b.ldc(Reg::T0, 0);
        b.bind(head);
        b.br(Cond::Ge, Reg::T0, n, out);
        b.alu(AluOp::Add, Reg::RV, Reg::RV, Reg::T0);
        b.alu(AluOp::Add, Reg::T0, Reg::T0, 1);
        b.jmp(head);
        b.bind(out);
        b.ret();
        prog(vec![b.finish().unwrap()], vec![], 0)
    }

    #[test]
    fn arithmetic_loop_computes_sum() {
        let p = counting_loop(10);
        let mut sim = Simulator::new(&p, Machine::i960kb(), SimConfig::default());
        let r = sim.run(&[]).unwrap();
        assert_eq!(r.return_value, 45);
        assert!(r.cycles > 0);
        assert!(r.steps > 30);
    }

    #[test]
    fn block_counts_match_loop_trip_count() {
        let p = counting_loop(7);
        let mut sim = Simulator::new(&p, Machine::i960kb(), SimConfig::default());
        let r = sim.run(&[]).unwrap();
        let cfg = &sim.cfgs()[0];
        // Header block executes n+1 times, body n times, pre/post once.
        let mut by_block: Vec<u64> = vec![0; cfg.num_blocks()];
        for (&(_, b), &c) in &r.block_counts {
            by_block[b.0] = c;
        }
        assert_eq!(by_block, vec![1, 8, 7, 1]);
    }

    #[test]
    fn out_of_fuel_on_infinite_loop() {
        let mut b = AsmBuilder::new("main");
        let l = b.fresh_label();
        b.bind(l);
        b.jmp(l);
        b.ret();
        let p = prog(vec![b.finish().unwrap()], vec![], 0);
        let mut sim = Simulator::new(
            &p,
            Machine::i960kb(),
            SimConfig { max_steps: 1000, ..SimConfig::default() },
        );
        assert!(matches!(sim.run(&[]), Err(SimError::OutOfFuel { .. })));
    }

    #[test]
    fn globals_load_store_roundtrip() {
        let g = Global { name: "buf".into(), addr: 0, words: 4, init: vec![10, 20, 30, 40] };
        // rv = buf[2]; buf[0] = 99;
        let mut b = AsmBuilder::new("main");
        b.ldc(Reg::T0, 0);
        b.ld(Reg::RV, Reg::T0, 2);
        b.ldc(Reg::temp(1), 99);
        b.st(Reg::temp(1), Reg::T0, 0);
        b.ret();
        let p = prog(vec![b.finish().unwrap()], vec![g], 0);
        let mut sim = Simulator::new(&p, Machine::i960kb(), SimConfig::default());
        let r = sim.run(&[]).unwrap();
        assert_eq!(r.return_value, 30);
        assert_eq!(sim.read_global("buf", 4).unwrap(), vec![99, 20, 30, 40]);
    }

    #[test]
    fn seed_global_overrides_init() {
        let g = Global { name: "x".into(), addr: 0, words: 2, init: vec![1, 2] };
        let mut b = AsmBuilder::new("main");
        b.ldc(Reg::T0, 0);
        b.ld(Reg::RV, Reg::T0, 1);
        b.ret();
        let p = prog(vec![b.finish().unwrap()], vec![g], 0);
        let mut sim = Simulator::new(&p, Machine::i960kb(), SimConfig::default());
        sim.seed_global("x", &[7, 8]).unwrap();
        assert_eq!(sim.run(&[]).unwrap().return_value, 8);
        assert!(matches!(sim.seed_global("x", &[1, 2, 3]), Err(SimError::SeedTooLong { .. })));
        assert!(matches!(sim.seed_global("nope", &[]), Err(SimError::NoSuchGlobal(_))));
    }

    #[test]
    fn call_and_return_with_hardware_frames() {
        // add(a, b) { local = a; return local + b; }  main { rv = add(3, 4); }
        let mut add = AsmBuilder::new("add");
        add.frame_words(1).num_params(2);
        add.st(Reg::A0, Reg::FP, 0);
        add.ld(Reg::T0, Reg::FP, 0);
        add.alu(AluOp::Add, Reg::RV, Reg::T0, Reg::A1);
        add.ret();
        let mut main = AsmBuilder::new("main");
        main.ldc(Reg::A0, 3);
        main.ldc(Reg::A1, 4);
        main.call(FuncId(0));
        main.ret();
        let p = prog(vec![add.finish().unwrap(), main.finish().unwrap()], vec![], 1);
        let mut sim = Simulator::new(&p, Machine::i960kb(), SimConfig::default());
        assert_eq!(sim.run(&[]).unwrap().return_value, 7);
    }

    #[test]
    fn warm_cache_run_is_faster() {
        let p = counting_loop(50);
        let mut sim = Simulator::new(
            &p,
            Machine::i960kb(),
            SimConfig { flush_cache: false, ..SimConfig::default() },
        );
        sim.flush_icache();
        let cold = sim.run(&[]).unwrap();
        sim.reset_data();
        let warm = sim.run(&[]).unwrap();
        assert!(warm.cycles < cold.cycles);
        assert_eq!(warm.return_value, cold.return_value);
        assert_eq!(warm.icache_misses, 0);
    }

    #[test]
    fn memory_fault_reported() {
        let mut b = AsmBuilder::new("main");
        b.ldc(Reg::T0, -5);
        b.ld(Reg::RV, Reg::T0, 0);
        b.ret();
        let p = prog(vec![b.finish().unwrap()], vec![], 0);
        let mut sim = Simulator::new(&p, Machine::i960kb(), SimConfig::default());
        assert!(matches!(sim.run(&[]), Err(SimError::MemOutOfBounds { .. })));
    }

    #[test]
    fn zero_register_reads_zero_and_ignores_writes() {
        let mut b = AsmBuilder::new("main");
        b.ldc(Reg::ZERO, 42);
        b.mov(Reg::RV, Reg::ZERO);
        b.ret();
        let p = prog(vec![b.finish().unwrap()], vec![], 0);
        let mut sim = Simulator::new(&p, Machine::i960kb(), SimConfig::default());
        assert_eq!(sim.run(&[]).unwrap().return_value, 0);
    }

    #[test]
    fn taken_branch_costs_more_than_fallthrough() {
        // taken: br jumps; fallthrough: condition false.
        let build = |val: i32| {
            let mut b = AsmBuilder::new("main");
            let l = b.fresh_label();
            b.ldc(Reg::T0, val);
            b.br(Cond::Eq, Reg::T0, 1, l);
            b.nop();
            b.bind(l);
            b.ret();
            prog(vec![b.finish().unwrap()], vec![], 0)
        };
        let pt = build(1);
        let pf = build(0);
        let mut st = Simulator::new(&pt, Machine::i960kb(), SimConfig::default());
        let mut sf = Simulator::new(&pf, Machine::i960kb(), SimConfig::default());
        let taken = st.run(&[]).unwrap();
        let fall = sf.run(&[]).unwrap();
        // Fallthrough executes one extra nop but no refill penalty;
        // with penalty 2 and nop cost 1, taken is still >= fall.
        assert!(taken.steps < fall.steps);
        assert!(taken.cycles >= fall.cycles);
    }

    #[test]
    fn args_land_in_argument_registers() {
        let mut b = AsmBuilder::new("main");
        b.alu(AluOp::Sub, Reg::RV, Reg::A0, Reg::A1);
        b.ret();
        let p = prog(vec![b.finish().unwrap()], vec![], 0);
        let mut sim = Simulator::new(&p, Machine::i960kb(), SimConfig::default());
        assert_eq!(sim.run(&[10, 3]).unwrap().return_value, 7);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use ipet_arch::{AluOp, AsmBuilder, Cond};

    fn loop_program() -> Program {
        let mut b = AsmBuilder::new("main");
        let head = b.fresh_label();
        let out = b.fresh_label();
        b.ldc(Reg::T0, 0);
        b.bind(head);
        b.br(Cond::Ge, Reg::T0, 3, out);
        b.alu(AluOp::Add, Reg::T0, Reg::T0, 1);
        b.jmp(head);
        b.bind(out);
        b.ret();
        Program::new(vec![b.finish().unwrap()], vec![], FuncId(0)).unwrap()
    }

    #[test]
    fn trace_matches_block_counts() {
        let p = loop_program();
        let mut sim = Simulator::new(&p, Machine::i960kb(), SimConfig::default());
        let (result, trace) = sim.run_traced(&[], 1000).unwrap();
        let total: u64 = result.block_counts.values().sum();
        assert_eq!(trace.len() as u64, total);
        // Cycle stamps are non-decreasing and the first event is block 1.
        assert_eq!(trace[0].block, BlockId(0));
        assert!(trace.windows(2).all(|w| w[0].cycle <= w[1].cycle));
        // The trace replays the loop: header appears 4 times.
        let headers = trace.iter().filter(|e| e.block == BlockId(1)).count();
        assert_eq!(headers, 4);
    }

    #[test]
    fn trace_cap_truncates_but_result_is_complete() {
        let p = loop_program();
        let mut sim = Simulator::new(&p, Machine::i960kb(), SimConfig::default());
        let (result, trace) = sim.run_traced(&[], 2).unwrap();
        assert_eq!(trace.len(), 2);
        assert!(result.block_counts.values().sum::<u64>() > 2);
    }
}
