//! Property tests on the timing simulator: cache monotonicity,
//! determinism, and miss accounting, over randomly generated programs.

use ipet_sim::{Machine, SimConfig, Simulator};
use proptest::prelude::*;

/// Random straight-line-with-loops mini-C source: assignments to `t` and
/// counted loops with constant bounds.
fn arb_source() -> impl Strategy<Value = String> {
    let op = prop_oneof![Just("+"), Just("-"), Just("*"), Just("/"), Just("^")];
    let assign = (op, 1i64..40).prop_map(|(op, n)| format!("t = t {op} {n};"));
    let line = prop_oneof![
        assign.clone(),
        (1i64..6, prop::collection::vec(assign, 1..3)).prop_map(|(trips, body)| {
            format!("for (k = 0; k < {trips}; k = k + 1) {{ {} }}", body.join(" "))
        }),
    ];
    prop::collection::vec(line, 1..8).prop_map(|lines| {
        format!("int main(int a) {{ int t; int k; t = a; {} return t; }}", lines.join("\n"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// A warm-cache run never takes longer than a cold-cache run of the
    /// same program on the same input, and executes the same instructions.
    #[test]
    fn warm_run_is_never_slower(src in arb_source(), a in -50i32..50) {
        let program = ipet_lang::compile(&src, "main").expect("compiles");
        let machine = Machine::i960kb();
        let mut sim = Simulator::new(
            &program,
            machine,
            SimConfig { flush_cache: false, ..SimConfig::default() },
        );
        sim.flush_icache();
        let cold = sim.run(&[a]).unwrap();
        sim.reset_data();
        let warm = sim.run(&[a]).unwrap();
        prop_assert_eq!(warm.steps, cold.steps);
        prop_assert_eq!(warm.return_value, cold.return_value);
        prop_assert!(warm.cycles <= cold.cycles);
        prop_assert!(warm.icache_misses <= cold.icache_misses);
    }

    /// Simulation is deterministic: same program, same input, same result.
    #[test]
    fn simulation_is_deterministic(src in arb_source(), a in -50i32..50) {
        let program = ipet_lang::compile(&src, "main").expect("compiles");
        let machine = Machine::i960kb();
        let mut s1 = Simulator::new(&program, machine, SimConfig::default());
        let mut s2 = Simulator::new(&program, machine, SimConfig::default());
        let r1 = s1.run(&[a]).unwrap();
        let r2 = s2.run(&[a]).unwrap();
        prop_assert_eq!(r1, r2);
    }

    /// Cold-run cache misses never exceed instruction fetches, and cycles
    /// are bounded below by steps (every instruction costs >= 1 cycle) and
    /// above by the static worst case per instruction.
    #[test]
    fn cycle_and_miss_accounting(src in arb_source(), a in -50i32..50) {
        let program = ipet_lang::compile(&src, "main").expect("compiles");
        let machine = Machine::i960kb();
        let mut sim = Simulator::new(&program, machine, SimConfig::default());
        let r = sim.run(&[a]).unwrap();
        prop_assert!(r.icache_misses <= r.steps);
        prop_assert!(r.cycles >= r.steps);
        // Loose static ceiling: worst per-instruction cost.
        let per_instr_max = machine.int_div_cycles
            + machine.miss_penalty
            + machine.branch_taken_penalty
            + machine.load_use_stall;
        prop_assert!(r.cycles <= r.steps * per_instr_max);
    }

    /// Block counts are flow-consistent: the entry block of the entry
    /// function executes exactly once.
    #[test]
    fn entry_block_runs_once(src in arb_source(), a in -50i32..50) {
        let program = ipet_lang::compile(&src, "main").expect("compiles");
        let machine = Machine::i960kb();
        let mut sim = Simulator::new(&program, machine, SimConfig::default());
        let r = sim.run(&[a]).unwrap();
        let entry_count = r
            .block_counts
            .get(&(program.entry, ipet_cfg::BlockId(0)))
            .copied()
            .unwrap_or(0);
        prop_assert_eq!(entry_count, 1);
    }

    /// A doubled miss penalty can only increase the cold-run cycle count,
    /// and leaves a fully-warm run unchanged.
    #[test]
    fn miss_penalty_monotonicity(src in arb_source(), a in -50i32..50) {
        let program = ipet_lang::compile(&src, "main").expect("compiles");
        let cheap = Machine::i960kb();
        let pricey = Machine { miss_penalty: cheap.miss_penalty * 2, ..cheap };
        let mut s1 = Simulator::new(&program, cheap, SimConfig::default());
        let mut s2 = Simulator::new(&program, pricey, SimConfig::default());
        let r1 = s1.run(&[a]).unwrap();
        let r2 = s2.run(&[a]).unwrap();
        prop_assert!(r2.cycles >= r1.cycles);
        prop_assert_eq!(r1.icache_misses, r2.icache_misses);
    }
}
