//! Property tests: the solver backend is invisible in results. Dense,
//! sparse and auto produce bit-identical estimates and audit certificates
//! over the synthetic workload generator — which is exactly the statement
//! that presolve + postsolve round-trips every witness: each accepted fast
//! solve reconstructs the full witness through the postsolve map, and the
//! audit re-certifies it in exact arithmetic against the original problem.
//!
//! The backend selector is process-global, so every test in this file
//! serializes on one mutex and restores the default before releasing it.

use ipet_bench::synth;
use ipet_core::{infer_loop_bounds, inferred_annotations, AnalysisBudget, Analyzer, SolverFaults};
use ipet_hw::Machine;
use ipet_lp::{set_solver_backend, SolverBackend};
use proptest::prelude::*;
use std::sync::Mutex;

static BACKEND_LOCK: Mutex<()> = Mutex::new(());

/// One audited end-to-end analysis of the seeded synthetic program under
/// the given backend: the estimate plus the audit tallies.
fn audited_run(seed: u64, backend: SolverBackend) -> (ipet_core::Estimate, usize, usize, bool) {
    set_solver_backend(backend);
    let s = synth::generate(seed, synth::SynthConfig::default());
    let machine = Machine::i960kb();
    let analyzer = Analyzer::new(&s.program, machine).expect("analyzer");
    let anns = ipet_core::parse_annotations(&inferred_annotations(&infer_loop_bounds(&analyzer)))
        .expect("parse");
    let (estimate, report) = analyzer
        .analyze_audited_with_faults(&anns, &AnalysisBudget::default(), &mut SolverFaults::none())
        .expect("audited analysis");
    (estimate, report.certified(), report.rejected(), report.all_certified())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Same `Estimate` (bounds, stats, witness count maps) and the same
    /// audit certificate tallies under every backend, with everything
    /// certified — the presolve/postsolve witness round-trip holds end to
    /// end, not just inside the LP layer.
    #[test]
    fn backend_choice_is_invisible_in_results(seed in 0u64..500) {
        let _guard = BACKEND_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let dense = audited_run(seed, SolverBackend::Dense);
        let sparse = audited_run(seed, SolverBackend::Sparse);
        let auto = audited_run(seed, SolverBackend::Auto);
        set_solver_backend(SolverBackend::Auto);
        prop_assert!(dense.3, "seed {}: dense run not fully certified", seed);
        prop_assert_eq!(&dense, &sparse, "seed {}: sparse diverges from dense", seed);
        prop_assert_eq!(&dense, &auto, "seed {}: auto diverges from dense", seed);
    }
}
