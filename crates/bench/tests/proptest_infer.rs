//! Property tests of `ipet-infer` over the synthetic workload generator:
//! every inferred loop interval must enclose the back-edge traversals the
//! cycle-level simulator actually observes, and replacing annotations by
//! inference must never loosen the reported bound (and must still pass
//! the exact-arithmetic audit).

use ipet_bench::synth;
use ipet_cfg::Cfg;
use ipet_core::{AnalysisBudget, Analyzer, Annotations, SolverFaults};
use ipet_hw::Machine;
use ipet_infer::{infer_and_merge, InferMode};
use ipet_sim::{SimConfig, Simulator};
use proptest::prelude::*;

const PROBE_ARGS: [i32; 5] = [-9, -1, 0, 3, 8];

/// Per-loop `(entries, back-edge traversals)` observed in one simulator
/// run, reconstructed from block execution counts. Entry-edge traversal
/// counts equal the source block's execution count only when that block
/// has a single successor; a loop with an ambiguous entry is skipped
/// (`None`) rather than guessed at.
fn observed_loop_counts(
    cfg: &Cfg,
    counts: &std::collections::BTreeMap<(ipet_arch::FuncId, ipet_cfg::BlockId), u64>,
) -> Vec<Option<(u64, u64)>> {
    let count = |b: ipet_cfg::BlockId| counts.get(&(cfg.func, b)).copied().unwrap_or(0);
    cfg.loops()
        .iter()
        .map(|l| {
            let mut entries = 0u64;
            for &e in &l.entry_edges {
                let from = cfg.edges[e.0].from?;
                let successors = cfg.edges.iter().filter(|x| x.from == Some(from)).count();
                if successors != 1 {
                    return None;
                }
                entries += count(from);
            }
            Some((entries, count(l.header) - entries))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Soundness against the simulator: for every loop the inference
    /// bounds, the observed back-edge traversals `B` and entries `E`
    /// satisfy `lo*E <= B <= hi*E` on every probe input.
    #[test]
    fn inferred_bounds_enclose_observed_iteration_counts(seed in 0u64..400) {
        let s = synth::generate(seed, synth::SynthConfig::default());
        let machine = Machine::i960kb();
        let analyzer = Analyzer::new(&s.program, machine).expect("analyzer");
        let out = infer_and_merge(Some(&s.module), &analyzer, &Annotations::default(), InferMode::Only)
            .expect("synth loops are all inferable");
        prop_assert_eq!(out.counts.failed, 0);

        // Synth programs are a single function, so provenance rows map
        // straight onto the entry CFG's natural loops by header.
        let func = s.program.entry;
        let cfg = Cfg::build(func, s.program.entry_function());
        for a in PROBE_ARGS {
            let mut sim = Simulator::new(&s.program, machine, SimConfig::default());
            let r = sim.run(&[a]).expect("simulation");
            let observed = observed_loop_counts(&cfg, &r.block_counts);
            for (l, obs) in cfg.loops().iter().zip(&observed) {
                let Some((entries, backs)) = *obs else { continue };
                let p = out
                    .annotations
                    .provenance
                    .iter()
                    .find(|p| p.header == l.header.0)
                    .expect("every loop has an inferred row");
                prop_assert!(
                    (p.lo as u64) * entries <= backs && backs <= (p.hi as u64) * entries,
                    "seed {}, a={}: loop at B{} observed {} back edges over {} entries, \
                     inferred [{}, {}]",
                    seed, a, l.header.0 + 1, backs, entries, p.lo, p.hi
                );
            }
        }
    }

    /// Replacing the machine-derived annotations by AST inference yields
    /// the same bound or a tighter one — and the tighter bound still
    /// certifies in exact arithmetic.
    #[test]
    fn inference_never_loosens_the_annotated_bound_and_still_certifies(seed in 0u64..400) {
        let s = synth::generate(seed, synth::SynthConfig::default());
        let machine = Machine::i960kb();
        let analyzer = Analyzer::new(&s.program, machine).expect("analyzer");
        let annotated_text =
            ipet_core::inferred_annotations(&ipet_core::infer_loop_bounds(&analyzer));
        let annotated = analyzer.analyze(&annotated_text).expect("annotated analysis");

        let out = infer_and_merge(Some(&s.module), &analyzer, &Annotations::default(), InferMode::Only)
            .expect("synth loops are all inferable");
        let budget = AnalysisBudget::default();
        let (inferred, report) = analyzer
            .analyze_audited_with_faults(&out.annotations, &budget, &mut SolverFaults::none())
            .expect("audited analysis");
        prop_assert!(
            annotated.bound.encloses(inferred.bound),
            "seed {}: inferred bound {:?} escapes annotated {:?}",
            seed, inferred.bound, annotated.bound
        );
        prop_assert!(report.all_certified(), "seed {}: inferred bound failed the audit", seed);
    }
}
