//! Property tests: warm-started delta re-solving is bit-identical to cold
//! monolithic solving over the synthetic workload generator. `Estimate`
//! equality covers the WCET and BCET bounds, the per-set solver stats and
//! both witness count maps; the audited variant additionally pins the
//! certificate tallies.

use ipet_bench::synth;
use ipet_core::{infer_loop_bounds, inferred_annotations, AnalysisBudget, Analyzer, SolverFaults};
use ipet_hw::Machine;
use proptest::prelude::*;

/// Inferred loop bounds plus (when the CFG has at least two blocks) a
/// tautological disjunctive path fact. The disjunction never cuts a
/// feasible path, but it forces a DNF expansion into two constraint sets,
/// so the warm path has per-set deltas to re-solve on top of a shared
/// base instead of degenerating into a single monolithic solve.
fn annotations_for(analyzer: &Analyzer) -> String {
    let mut text = inferred_annotations(&infer_loop_bounds(analyzer));
    let entry = analyzer.instances().instances[0].func;
    if analyzer.instances().cfgs[entry.0].num_blocks() >= 2 {
        text.push_str("fn f { (x1 >= x2) | (x2 >= x1); }\n");
    }
    text
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The whole estimate — bounds, per-set stats, witnesses — is
    /// bit-identical with warm starting on (the default) and off.
    #[test]
    fn warm_estimates_and_witnesses_match_cold(seed in 0u64..500) {
        let s = synth::generate(seed, synth::SynthConfig::default());
        let machine = Machine::i960kb();
        let warm = Analyzer::new(&s.program, machine).expect("analyzer");
        let cold = Analyzer::new(&s.program, machine).expect("analyzer").with_warm_start(false);
        let anns = ipet_core::parse_annotations(&annotations_for(&warm)).expect("parse");
        let budget = AnalysisBudget::default();
        let w = warm
            .analyze_parsed_with_faults(&anns, &budget, &mut SolverFaults::none())
            .expect("warm analysis");
        let c = cold
            .analyze_parsed_with_faults(&anns, &budget, &mut SolverFaults::none())
            .expect("cold analysis");
        prop_assert_eq!(&w.wcet_counts, &c.wcet_counts, "seed {}: WCET witnesses differ", seed);
        prop_assert_eq!(&w.bcet_counts, &c.bcet_counts, "seed {}: BCET witnesses differ", seed);
        prop_assert_eq!(w, c, "seed {}: estimates differ", seed);
    }

    /// Auditing the warm path certifies exactly what the cold path
    /// certifies: same estimate, everything certified, equal tallies.
    #[test]
    fn warm_audit_certificates_match_cold(seed in 0u64..500) {
        let s = synth::generate(seed, synth::SynthConfig::default());
        let machine = Machine::i960kb();
        let warm = Analyzer::new(&s.program, machine).expect("analyzer");
        let cold = Analyzer::new(&s.program, machine).expect("analyzer").with_warm_start(false);
        let anns = ipet_core::parse_annotations(&annotations_for(&warm)).expect("parse");
        let budget = AnalysisBudget::default();
        let (we, wr) = warm
            .analyze_audited_with_faults(&anns, &budget, &mut SolverFaults::none())
            .expect("warm audited");
        let (ce, cr) = cold
            .analyze_audited_with_faults(&anns, &budget, &mut SolverFaults::none())
            .expect("cold audited");
        prop_assert_eq!(we, ce, "seed {}: audited estimates differ", seed);
        prop_assert!(wr.all_certified(), "seed {}: warm run not fully certified:\n{}", seed, wr.render());
        prop_assert!(cr.all_certified(), "seed {}: cold run not fully certified:\n{}", seed, cr.render());
        prop_assert_eq!(wr.certified(), cr.certified(), "seed {}: certified tallies differ", seed);
        prop_assert_eq!(wr.rejected(), cr.rejected(), "seed {}: rejected tallies differ", seed);
    }
}

/// The tautological disjunction really produces multi-set plans (so the
/// properties above exercise base+delta warm starts, not just the trivial
/// single-set path).
#[test]
fn synth_disjunction_yields_multiple_sets() {
    let mut multi = 0usize;
    for seed in 0..8u64 {
        let s = synth::generate(seed, synth::SynthConfig::default());
        let analyzer = Analyzer::new(&s.program, Machine::i960kb()).expect("analyzer");
        let anns = ipet_core::parse_annotations(&annotations_for(&analyzer)).expect("parse");
        let plan = analyzer.plan(&anns, &AnalysisBudget::default()).expect("plan");
        if plan.num_sets() > 1 {
            multi += 1;
            assert!(plan.warm_start(), "warm starting is on by default");
            assert_eq!(plan.bases().len(), 2, "one base per objective sense");
        }
    }
    assert!(multi > 0, "no seed produced a multi-set plan; the property tests are vacuous");
}
