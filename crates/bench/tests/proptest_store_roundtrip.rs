//! Property tests: the persistent solve store round-trips over the
//! synthetic workload generator. For arbitrary programs, a
//! write → reopen → replay cycle is bit-identical to a cold solve, and
//! arbitrary damage to the file (truncation, bit flips) quarantines
//! records and falls back to cold solving — it never alters a bound.

use ipet_bench::synth;
use ipet_core::{
    infer_loop_bounds, inferred_annotations, parse_annotations, AnalysisBudget, AnalysisPlan,
    Analyzer,
};
use ipet_hw::Machine;
use ipet_pool::{PlanBatch, SolvePool};
use ipet_store::{Store, StoreMode};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn scratch(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir()
        .join(format!("ipet-bench-store-prop-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir scratch");
    dir
}

/// Inferred loop bounds plus (when possible) a tautological disjunction,
/// so plans expand into more than one constraint set and the store holds
/// several records per program (same trick as `proptest_warm_cold.rs`).
fn plan_for(seed: u64) -> (AnalysisPlan, AnalysisBudget) {
    let s = synth::generate(seed, synth::SynthConfig::default());
    let analyzer = Analyzer::new(&s.program, Machine::i960kb()).expect("analyzer");
    let mut text = inferred_annotations(&infer_loop_bounds(&analyzer));
    let entry = analyzer.instances().instances[0].func;
    if analyzer.instances().cfgs[entry.0].num_blocks() >= 2 {
        text.push_str("fn f { (x1 >= x2) | (x2 >= x1); }\n");
    }
    let anns = parse_annotations(&text).expect("annotations");
    let budget = AnalysisBudget::default();
    let plan = analyzer.plan(&anns, &budget).expect("plan");
    (plan, budget)
}

fn run_with_store(plan: &AnalysisPlan, budget: &AnalysisBudget, store: &Arc<Store>) -> PlanBatch {
    let pool = SolvePool::new(1).with_store(Arc::clone(store));
    pool.run_plans(std::slice::from_ref(plan), &budget.solve)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// write → reopen → replay is bit-identical to the cold solve, with
    /// every answer actually coming from disk.
    #[test]
    fn store_round_trip_is_bit_identical(seed in 0u64..500) {
        let dir = scratch("roundtrip");
        let path = dir.join("solves.store");
        let (plan, budget) = plan_for(seed);

        let cold = {
            let store = Arc::new(Store::open(&path));
            prop_assert_eq!(store.mode(), StoreMode::ReadWrite);
            let batch = run_with_store(&plan, &budget, &store);
            store.flush().expect("flush");
            batch
        };

        let store = Arc::new(Store::open(&path));
        prop_assert_eq!(store.stats().quarantined, 0, "seed {}: clean file quarantined", seed);
        prop_assert!(store.stats().loaded > 0, "seed {}: nothing persisted", seed);
        let warm = run_with_store(&plan, &budget, &store);
        // Only `Exact` resolutions persist, so a plan with infeasible sets
        // legitimately re-solves those — but everything that was written
        // must replay.
        prop_assert!(
            warm.report.misses < cold.report.misses,
            "seed {}: warm run replayed nothing from disk", seed
        );
        prop_assert!(store.stats().hits > 0, "seed {}: no store hits", seed);
        let (c, w) = (cold.estimates[0].as_ref().unwrap(), warm.estimates[0].as_ref().unwrap());
        prop_assert_eq!(c, w, "seed {}: replay differs from cold solve", seed);
    }

    /// Damaging the file — truncating it at an arbitrary offset, then
    /// flipping a byte in what remains — quarantines records and falls
    /// back to cold solving; the resulting bounds never change.
    #[test]
    fn damaged_store_never_alters_a_bound(
        seed in 0u64..500,
        cut in 0usize..4096,
        flip in 0usize..4096,
        mask in 1u8..=255,
    ) {
        let dir = scratch("damage");
        let path = dir.join("solves.store");
        let (plan, budget) = plan_for(seed);

        let baseline = {
            let store = Arc::new(Store::open(&path));
            let batch = run_with_store(&plan, &budget, &store);
            store.flush().expect("flush");
            batch
        };

        let mut bytes = std::fs::read(&path).expect("read store");
        let full = bytes.len();
        bytes.truncate(cut % full.max(1));
        if !bytes.is_empty() {
            let at = flip % bytes.len();
            bytes[at] ^= mask;
        }
        std::fs::write(&path, &bytes).expect("damage store");

        let store = Arc::new(Store::open(&path));
        // Damage shrinks what loads; it must never invent entries.
        prop_assert!(
            store.stats().loaded <= baseline.report.misses,
            "seed {}: damaged file loaded more than was written", seed
        );
        let recovered = run_with_store(&plan, &budget, &store);
        // The bounds must be exactly the cold run's, no matter what mix of
        // replays and fallback solves produced them.
        let (b, r) =
            (baseline.estimates[0].as_ref().unwrap(), recovered.estimates[0].as_ref().unwrap());
        prop_assert_eq!(b, r, "seed {}: damage at cut={} flip={} changed a bound", seed, cut, flip);

        // The recovery run also repairs the store: one flush, and a clean
        // reopen replays everything with nothing quarantined.
        store.flush().expect("repair flush");
        let store2 = Arc::new(Store::open(&path));
        prop_assert_eq!(store2.stats().quarantined, 0, "seed {}: repair left damage", seed);
        let replayed = run_with_store(&plan, &budget, &store2);
        prop_assert_eq!(
            b, replayed.estimates[0].as_ref().unwrap(),
            "seed {}: post-repair replay differs", seed
        );
    }
}
