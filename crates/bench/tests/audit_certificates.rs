//! Property tests for the exact-arithmetic certifier over the synthetic
//! workload generator, plus the mutation self-test: an injected corruption
//! of a solver witness or bound must always be caught by the audit.

use ipet_bench::synth;
use ipet_core::{
    infer_loop_bounds, inferred_annotations, AnalysisBudget, Analyzer, AuditReport, BoundQuality,
    CertVerdict, Estimate, SolverFaults,
};
use ipet_hw::Machine;
use proptest::prelude::*;

/// Analyzes the seeded synthetic program with certification on, under the
/// given fault injection.
fn audited(seed: u64, faults: &mut SolverFaults) -> (Estimate, AuditReport) {
    let s = synth::generate(seed, synth::SynthConfig::default());
    let analyzer = Analyzer::new(&s.program, Machine::i960kb()).expect("analyzer");
    let anns = ipet_core::parse_annotations(&inferred_annotations(&infer_loop_bounds(&analyzer)))
        .expect("inferred annotations parse");
    analyzer
        .analyze_audited_with_faults(&anns, &AnalysisBudget::default(), faults)
        .expect("analysis succeeds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every Exact solve the pipeline reports carries a certificate that
    /// verifies: feasibility, exact objective replay and CFG flow replay.
    #[test]
    fn every_exact_solve_certifies(seed in 0u64..1000) {
        let (est, report) = audited(seed, &mut SolverFaults::none());
        prop_assert!(report.all_certified(), "seed {seed}:\n{}", report.render());
        prop_assert!(report.certified() >= 1, "seed {seed}: nothing was certified");
        if est.quality == BoundQuality::Exact {
            for cert in &report.sets {
                for verdict in [&cert.wcet, &cert.bcet] {
                    prop_assert!(
                        matches!(
                            verdict,
                            CertVerdict::Certified { .. } | CertVerdict::Infeasible
                        ),
                        "seed {seed}, set {}: exact quality but verdict {}",
                        cert.set,
                        verdict.describe()
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Mutation self-test: a corrupted witness (one count off by one) must
    /// be rejected by at least one certificate check.
    #[test]
    fn corrupted_witnesses_are_rejected(seed in 0u64..200) {
        let (_, report) = audited(seed, &mut SolverFaults::corrupt_witness_at(0));
        prop_assert!(
            report.rejected() >= 1,
            "seed {seed}: corrupt witness slipped through:\n{}",
            report.render()
        );
    }

    /// Mutation self-test: a corrupted claimed bound (off by one cycle)
    /// must fail the exact objective replay.
    #[test]
    fn corrupted_bounds_are_rejected(seed in 0u64..200) {
        let (_, report) = audited(seed, &mut SolverFaults::corrupt_bound_at(0));
        prop_assert!(
            report.rejected() >= 1,
            "seed {seed}: corrupt bound slipped through:\n{}",
            report.render()
        );
    }
}

/// The auditor only observes: with and without certification, the estimate
/// is bit-identical.
#[test]
fn auditing_never_changes_the_estimate() {
    for seed in 0..8u64 {
        let s = synth::generate(seed, synth::SynthConfig::default());
        let analyzer = Analyzer::new(&s.program, Machine::i960kb()).expect("analyzer");
        let text = inferred_annotations(&infer_loop_bounds(&analyzer));
        let anns = ipet_core::parse_annotations(&text).expect("parse");
        let budget = AnalysisBudget::default();
        let plain = analyzer
            .analyze_parsed_with_faults(&anns, &budget, &mut SolverFaults::none())
            .expect("plain");
        let (audited, _) = analyzer
            .analyze_audited_with_faults(&anns, &budget, &mut SolverFaults::none())
            .expect("audited");
        assert_eq!(plain, audited, "seed {seed}");
    }
}
