//! The §II scalability comparison as a Criterion sweep: explicit path
//! enumeration (exponential in the diamond count k) against the implicit
//! ILP formulation (polynomial), on the same k-diamond programs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ipet_baseline::{diamond_chain_program, PathEnumerator};
use ipet_cfg::Cfg;
use ipet_core::Analyzer;
use ipet_hw::{block_cost, Machine};
use std::collections::HashMap;
use std::hint::black_box;

fn bench_blowup(c: &mut Criterion) {
    let machine = Machine::i960kb();
    let mut group = c.benchmark_group("blowup");
    group.sample_size(10);
    for k in [4usize, 8, 12] {
        let program = diamond_chain_program(k);
        let cfg = Cfg::build(program.entry, program.entry_function());
        let costs: Vec<_> =
            cfg.blocks.iter().map(|b| block_cost(&machine, program.entry_function(), b)).collect();

        group.bench_with_input(BenchmarkId::new("explicit", k), &k, |bench, _| {
            bench.iter(|| {
                let e = PathEnumerator::new(&cfg, &costs, &HashMap::new(), u64::MAX).unwrap();
                black_box(e.enumerate().worst)
            })
        });

        let analyzer = Analyzer::new(&program, machine).unwrap();
        group.bench_with_input(BenchmarkId::new("implicit", k), &k, |bench, _| {
            bench.iter(|| black_box(analyzer.analyze("").unwrap().bound.upper))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_blowup);
criterion_main!(benches);
