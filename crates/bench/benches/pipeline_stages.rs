//! Times each stage of the toolchain separately on the largest routine —
//! compile, CFG + instance expansion, block costing, simulation — to show
//! where the milliseconds go (the paper's "insignificant" claim covers
//! only the ILP; this bench covers the substrates).

use criterion::{criterion_group, criterion_main, Criterion};
use ipet_cfg::Instances;
use ipet_hw::{block_cost, Machine};
use ipet_sim::measure;
use std::hint::black_box;

fn bench_stages(c: &mut Criterion) {
    let b = ipet_suite::by_name("dhry").expect("bundled benchmark");
    let machine = Machine::i960kb();
    let program = b.program().unwrap();

    let mut group = c.benchmark_group("pipeline_stages");
    group.sample_size(20);

    group.bench_function("compile", |bench| {
        bench.iter(|| black_box(ipet_lang::compile(black_box(b.source), b.entry).unwrap()))
    });

    group.bench_function("cfg_expand", |bench| {
        bench.iter(|| black_box(Instances::expand(&program, program.entry).unwrap()))
    });

    group.bench_function("block_costs", |bench| {
        bench.iter(|| {
            let inst = Instances::expand(&program, program.entry).unwrap();
            let mut total = 0u64;
            for (f, cfg) in inst.cfgs.iter().enumerate() {
                for blk in &cfg.blocks {
                    total += block_cost(&machine, &program.functions[f], blk).worst_cold;
                }
            }
            black_box(total)
        })
    });

    group.bench_function("simulate_worst", |bench| {
        bench.iter(|| {
            let r = measure(&program, machine, &(b.worst_seeds)(), b.args_worst, true).unwrap();
            black_box(r.cycles)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_stages);
criterion_main!(benches);
