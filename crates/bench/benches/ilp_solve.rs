//! Times the ILP pipeline per benchmark — the paper's §VI observation
//! that "the CPU times taken for each ILP problem were insignificant,
//! less than 2 seconds on an SGI Indigo".
//!
//! One Criterion group per Table-I routine, timing the full analysis
//! (structural extraction + DNF expansion + all ILP solves).

use criterion::{criterion_group, criterion_main, Criterion};
use ipet_core::Analyzer;
use ipet_hw::Machine;
use std::hint::black_box;

fn bench_ilp(c: &mut Criterion) {
    let mut group = c.benchmark_group("ilp_solve");
    group.sample_size(10);
    for b in ipet_suite::all() {
        let program = b.program().unwrap();
        let machine = Machine::i960kb();
        let analyzer = Analyzer::new(&program, machine).unwrap();
        let ann = b.annotations(&program);
        group.bench_function(b.name, |bench| {
            bench.iter(|| {
                let est = analyzer.analyze(black_box(&ann)).unwrap();
                black_box(est.bound)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ilp);
criterion_main!(benches);
