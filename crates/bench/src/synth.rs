//! Seeded random workload generator: structured mini-C-level programs
//! (assignments, nested if/else, bounded counted loops) built directly on
//! the `ipet-lang` AST. Used by the stress experiment and benches to
//! exercise the whole pipeline on inputs nobody hand-tuned.

use ipet_lang::{compile_module, BinOp, Expr, ExprKind, FuncDecl, Item, Module, Stmt};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape parameters for the generator.
#[derive(Debug, Clone, Copy)]
pub struct SynthConfig {
    /// Maximum statement-tree depth.
    pub max_depth: usize,
    /// Maximum statements per block.
    pub max_block: usize,
    /// Probability (percent) that a nested statement is an `if`.
    pub if_weight: u32,
    /// Probability (percent) that a nested statement is a counted loop.
    pub loop_weight: u32,
    /// Maximum iterations of generated counted loops.
    pub max_trips: i64,
}

impl Default for SynthConfig {
    fn default() -> SynthConfig {
        SynthConfig { max_depth: 3, max_block: 4, if_weight: 45, loop_weight: 25, max_trips: 6 }
    }
}

fn num(n: i64) -> Expr {
    Expr { kind: ExprKind::Num(n), line: 1 }
}

fn var(name: &str) -> Expr {
    Expr { kind: ExprKind::Var(name.into()), line: 1 }
}

fn binop(op: BinOp, l: Expr, r: Expr) -> Expr {
    Expr { kind: ExprKind::Binary(op, Box::new(l), Box::new(r)), line: 1 }
}

/// A generated program plus the loop metadata needed to annotate it.
#[derive(Debug)]
pub struct SynthProgram {
    /// The compiled program (entry `f`, one `int` argument).
    pub program: ipet_arch::Program,
    /// The source AST, for AST-level loop-bound inference (`ipet-infer`).
    pub module: Module,
    /// Number of counted loops generated (each has an exact constant trip
    /// count, so `ipet_core::infer_loop_bounds` can bound them all).
    pub num_loops: usize,
}

/// Generates a random structured program from `seed`.
///
/// Every generated loop is a `for (v = 0; v < K; v = v + 1)` with constant
/// `K`, so the program always terminates and the automatic loop-bound
/// inference closes the analysis without manual annotations.
pub fn generate(seed: u64, config: SynthConfig) -> SynthProgram {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut num_loops = 0usize;
    let mut loop_var = 0usize;

    fn gen_block(
        rng: &mut StdRng,
        config: &SynthConfig,
        depth: usize,
        num_loops: &mut usize,
        loop_var: &mut usize,
    ) -> Vec<Stmt> {
        let n = rng.gen_range(1..=config.max_block);
        (0..n).map(|_| gen_stmt(rng, config, depth, num_loops, loop_var)).collect()
    }

    fn gen_stmt(
        rng: &mut StdRng,
        config: &SynthConfig,
        depth: usize,
        num_loops: &mut usize,
        loop_var: &mut usize,
    ) -> Stmt {
        let roll = rng.gen_range(0u32..100);
        if depth > 0 && roll < config.if_weight {
            let threshold = rng.gen_range(-8i64..8);
            let cmp = match rng.gen_range(0..3) {
                0 => BinOp::Lt,
                1 => BinOp::Ge,
                _ => BinOp::Eq,
            };
            let then_branch = gen_block(rng, config, depth - 1, num_loops, loop_var);
            let else_branch = if rng.gen_bool(0.5) {
                gen_block(rng, config, depth - 1, num_loops, loop_var)
            } else {
                Vec::new()
            };
            Stmt::If {
                cond: binop(cmp, var("a"), num(threshold)),
                then_branch,
                else_branch,
                line: 1,
            }
        } else if depth > 0 && roll < config.if_weight + config.loop_weight {
            *num_loops += 1;
            *loop_var += 1;
            let v = format!("i{loop_var}");
            let trips = rng.gen_range(1..=config.max_trips);
            let body = gen_block(rng, config, depth - 1, num_loops, loop_var);
            Stmt::For {
                init: Some(Box::new(Stmt::Assign { name: v.clone(), value: num(0), line: 1 })),
                cond: Some(binop(BinOp::Lt, var(&v), num(trips))),
                step: Some(Box::new(Stmt::Assign {
                    name: v.clone(),
                    value: binop(BinOp::Add, var(&v), num(1)),
                    line: 1,
                })),
                body,
                line: 1,
            }
        } else {
            let op = match rng.gen_range(0..5) {
                0 => BinOp::Add,
                1 => BinOp::Sub,
                2 => BinOp::Mul,
                3 => BinOp::Xor,
                _ => BinOp::Div,
            };
            Stmt::Assign {
                name: "t".into(),
                value: binop(op, var("t"), num(rng.gen_range(1i64..30))),
                line: 1,
            }
        }
    }

    let mut body = vec![Stmt::Decl { name: "t".into(), init: Some(num(1)), line: 1 }];
    // Pre-declare loop variables discovered during generation: generate the
    // tree first, then prepend the declarations.
    let tree = gen_block(&mut rng, &config, config.max_depth, &mut num_loops, &mut loop_var);
    for v in 1..=loop_var {
        body.push(Stmt::Decl { name: format!("i{v}"), init: None, line: 1 });
    }
    body.extend(tree);
    body.push(Stmt::Return { value: Some(var("t")), line: 1 });

    let module = Module {
        items: vec![Item::Func(FuncDecl {
            name: "f".into(),
            params: vec!["a".into()],
            body,
            line: 1,
        })],
    };
    let program = compile_module(&module, "f").expect("generated program compiles");
    SynthProgram { program, module, num_loops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipet_core::{infer_loop_bounds, inferred_annotations, Analyzer};
    use ipet_hw::Machine;
    use ipet_sim::{SimConfig, Simulator};

    #[test]
    fn generation_is_deterministic() {
        let a = generate(42, SynthConfig::default());
        let b = generate(42, SynthConfig::default());
        assert_eq!(a.program, b.program);
        assert_eq!(a.num_loops, b.num_loops);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(1, SynthConfig::default());
        let b = generate(2, SynthConfig::default());
        assert_ne!(a.program, b.program);
    }

    #[test]
    fn generated_loops_are_all_inferable() {
        for seed in 0..20 {
            let s = generate(seed, SynthConfig::default());
            let machine = Machine::i960kb();
            let analyzer = Analyzer::new(&s.program, machine).unwrap();
            let loops = analyzer.loops_needing_bounds();
            let inferred = infer_loop_bounds(&analyzer);
            assert_eq!(inferred.len(), loops.len(), "seed {seed}: all counted loops inferable");
            let est = analyzer.analyze(&inferred_annotations(&inferred)).unwrap();
            // Soundness spot-check on a few inputs.
            for a in [-5, 0, 7] {
                let mut sim = Simulator::new(&s.program, machine, SimConfig::default());
                let r = sim.run(&[a]).unwrap();
                assert!(
                    est.bound.lower <= r.cycles && r.cycles <= est.bound.upper,
                    "seed {seed}, a={a}"
                );
            }
        }
    }
}
