//! `experiments` — regenerates every table and figure of the paper.
//!
//! ```text
//! experiments all                 # everything below, in order
//! experiments fig1|fig2|fig3|fig4|fig5|fig6
//! experiments table1|table2|table3
//! experiments ilpstats            # §III-D: first LP relaxation integral
//! experiments blowup              # §II: explicit enumeration blow-up
//! experiments ablation-split     # §IV: first-iteration cache splitting
//! experiments sweep               # WCET vs i-cache miss penalty
//! experiments parametric [--check] # sweep via certified bound formulas
//! experiments dsp3210             # §VII: the AT&T DSP3210 port
//! experiments dcache              # future work: data-cache hardware model
//! experiments exhaustive          # actual bound by full input sweep
//! experiments sensitivity         # WCET price of each loop bound
//! experiments stress              # random-program soundness sweep
//! experiments tables              # Tables I-III via the solve pool, timing-free
//! experiments benchjson           # ipet-bench-v2 JSON doc: bounds, cache, trace
//! experiments counters            # deterministic metric lines (CI diffs these)
//! experiments gate BASELINE.json  # perf-regression gate vs a committed baseline
//! experiments csv [DIR]           # dump every table as CSV (default ./results)
//! ```
//!
//! `--jobs N` (default 1) sets the `ipet-pool` worker count for the
//! pool-routed experiments (`all`, `table2`, `table3`, `tables`,
//! `benchjson`, `counters`, `gate`, `fig1`, `table1`). Table output is
//! bit-for-bit identical for any `N`; only wall-clock changes.
//!
//! `--no-warm-start` disables base+delta warm starting on the pool-routed
//! experiments: every ILP is solved cold. Every bound and table is
//! bit-identical either way — only solver effort counters (`lp.ticks`,
//! `lp.warm.*`) change. CI diffs `counters` against
//! `counters --no-warm-start` to prove it.
//!
//! `--infer[=only|prefer-annot]` runs `ipet-infer` loop-bound inference
//! on the pool-routed experiments before planning. On the bundled suite
//! every inferred bound matches (or tightens within) its hand
//! annotation, so every table row of `tables --infer` is byte-identical
//! to `tables` (CI diffs them modulo the `pool:` cache-summary line —
//! a tightened dhry interval changes which ILPs the cache can replay);
//! the `infer.*` trace counters record the outcome tallies.
//!
//! `gate` exits non-zero when a deterministic metric differs from the
//! baseline or the solve wall-clock regresses beyond `--tol-wall PCT`
//! (default 300). Refresh the baseline with
//! `experiments gate --write BENCH_baseline.json` when a change is
//! intentional.
//!
//! `--audit` appends an exact-arithmetic certification pass over every
//! Table I benchmark (`ipet-audit`) and exits 3 if any reported bound
//! fails to certify.

use ipet_bench::*;

fn main() {
    // `--jobs N` and `--audit` may appear anywhere; everything else is
    // positional.
    let mut jobs = 1usize;
    let mut audit = false;
    let mut warm = true;
    let mut infer: Option<ipet_infer::InferMode> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        if a == "--audit" {
            audit = true;
        } else if a == "--no-warm-start" {
            warm = false;
        } else if a == "--solver" {
            let v = it.next().unwrap_or_else(|| {
                eprintln!("--solver needs a value (dense, sparse or auto)");
                std::process::exit(1);
            });
            let backend = ipet_lp::SolverBackend::parse(&v).unwrap_or_else(|| {
                eprintln!("--solver: `{v}` is not dense, sparse or auto");
                std::process::exit(1);
            });
            ipet_lp::set_solver_backend(backend);
        } else if a == "--infer" {
            infer = Some(ipet_infer::InferMode::Merge);
        } else if let Some(m) = a.strip_prefix("--infer=") {
            infer = Some(ipet_infer::InferMode::parse(m).unwrap_or_else(|| {
                eprintln!("--infer={m}: expected only, prefer-annot or merge");
                std::process::exit(1);
            }));
        } else if a == "--jobs" {
            let v = it.next().unwrap_or_else(|| {
                eprintln!("--jobs needs a value");
                std::process::exit(1);
            });
            jobs = v.parse::<usize>().unwrap_or_else(|_| {
                eprintln!("--jobs: `{v}` is not a positive integer");
                std::process::exit(1);
            });
            jobs = jobs.max(1);
        } else {
            rest.push(a);
        }
    }
    let which = rest.first().cloned().unwrap_or_else(|| "all".to_string());
    // The Table I-III data now always flows through the solve pool; at the
    // default `--jobs 1` it degenerates to a serial run with identical
    // results (the pool-level tests pin this down).
    let pooled = || run_all_pooled_infer(&ipet_pool::SolvePool::new(jobs), warm, infer);
    // `experiments csv <dir>` dumps every table as CSV for plotting.
    if which == "csv" {
        let dir = std::path::PathBuf::from(rest.get(1).map(String::as_str).unwrap_or("results"));
        write_csvs(&dir, &pooled().data).expect("writing CSVs");
        println!("wrote CSVs to {}", dir.display());
        return;
    }
    match which.as_str() {
        "fig1" => fig1(&pooled().data),
        "fig2" | "fig3" | "fig4" => figures(),
        "fig5" => println!("{}", fig5_text()),
        "fig6" => fig6(),
        "table1" => table1(&pooled().data),
        "table2" => table23(&pooled().data, false),
        "table3" => table23(&pooled().data, true),
        "ilpstats" => ilpstats(&run_all()),
        "blowup" => blowup(),
        "ablation-split" => ablation(),
        "sweep" => sweep(),
        "parametric" => parametric(jobs, warm, &rest[1..]),
        "dsp3210" => dsp3210(),
        "dcache" => dcache(),
        "exhaustive" => exhaustive(),
        "sensitivity" => sensitivity(),
        "stress" => stress(),
        "budget" => budget(),
        "tables" => tables(jobs, warm, infer),
        "benchjson" => benchjson(jobs, warm, infer),
        "counters" => counters(jobs, warm, infer),
        "gate" => gate_cmd(jobs, warm, infer, &rest[1..]),
        "all" => {
            // One pool for the whole run: the miss-penalty sweep's point at
            // the default penalty (8) replays the Table II/III solves from
            // the shared cache instead of repeating them.
            let pool = ipet_pool::SolvePool::new(jobs);
            let run = run_all_pooled_with(&pool, warm);
            figures();
            println!("{}", fig5_text());
            fig6();
            fig1(&run.data);
            table1(&run.data);
            table23(&run.data, false);
            table23(&run.data, true);
            // Per-benchmark solve timing needs the serial path (pooled
            // solves interleave across benchmarks).
            ilpstats(&run_all());
            blowup();
            ablation();
            sweep_pooled(&pool, warm);
            pool_summary(&pool, &run);
            dsp3210();
            dcache();
            exhaustive();
            sensitivity();
            stress();
            budget();
        }
        other => {
            eprintln!("unknown experiment {other}");
            std::process::exit(1);
        }
    }
    // `--audit`: after the requested experiment, re-verify every Table I
    // benchmark's bounds in exact arithmetic and fail loudly (exit 3) if a
    // certificate is rejected.
    if audit {
        let reports = audit_all_pooled(jobs, warm);
        let mut rejected = 0usize;
        for (name, report) in &reports {
            println!(
                "audit {name}: {} verdict(s) certified, {} rejected",
                report.certified(),
                report.rejected()
            );
            for cert in &report.sets {
                for verdict in [&cert.wcet, &cert.bcet] {
                    if verdict.is_rejection() {
                        eprintln!("  set {}: {}", cert.set, verdict.describe());
                    }
                }
            }
            rejected += report.rejected();
        }
        if rejected > 0 {
            eprintln!("audit: {rejected} verdict(s) rejected — bounds must not be trusted");
            std::process::exit(3);
        }
        println!("audit: all {} benchmark(s) certified", reports.len());
    }
}

const SWEEP_PENALTIES: [u64; 6] = [0, 2, 4, 8, 16, 32];
const SWEEP_NAMES: [&str; 3] = ["check_data", "fft", "matgen"];

/// Tables I-III plus the miss-penalty sweep through one shared solve pool,
/// printing only deterministic data: no wall-clock, no per-worker figures.
/// `tables --jobs 1` and `tables --jobs 8` must produce byte-identical
/// output (CI diffs them).
fn tables(jobs: usize, warm: bool, infer: Option<ipet_infer::InferMode>) {
    let pool = ipet_pool::SolvePool::new(jobs);
    let run = run_all_pooled_infer(&pool, warm, infer);
    table1(&run.data);
    table23(&run.data, false);
    table23(&run.data, true);
    let (points, sweep_report) =
        sweep_miss_penalty_pooled(&pool, &SWEEP_PENALTIES, &SWEEP_NAMES, warm);
    print_sweep(&points);
    let stats = pool.cache_stats();
    println!(
        "pool: {} solved, {} replayed, {} rejected near-hits, {} simplex ticks",
        stats.misses,
        stats.hits,
        stats.rejected,
        run.total_ticks + sweep_report.total_ticks
    );
}

fn pool_summary(pool: &ipet_pool::SolvePool, run: &PooledRun) {
    let stats = pool.cache_stats();
    println!("== solve pool: {} worker(s) ==", run.jobs);
    println!(
        "cache: {} solved, {} replayed, {} rejected near-hits",
        stats.misses, stats.hits, stats.rejected
    );
    println!(
        "table batch: {} ticks across workers {:?}; solve wall-clock {:.2?}",
        run.total_ticks, run.worker_ticks, run.solve_wall
    );
    println!();
}

/// Runs the Table I-III batch plus the miss-penalty sweep on one shared
/// pool with the trace recorder installed, assembling the `ipet-bench-v2`
/// document: bounds, set counts, cache traffic, tick totals, the full
/// trace, and the (non-deterministic) timing sections.
fn collect_bench_doc(
    jobs: usize,
    warm: bool,
    infer: Option<ipet_infer::InferMode>,
) -> ipet_trace::Json {
    let recorder = ipet_trace::install();
    recorder.reset();
    let pool = ipet_pool::SolvePool::new(jobs);
    let run = run_all_pooled_infer(&pool, warm, infer);
    let (_, sweep_report) = sweep_miss_penalty_pooled(&pool, &SWEEP_PENALTIES, &SWEEP_NAMES, warm);
    // Solve-phase wall only: compile/simulate/planning are serial and
    // identical across `--jobs`, so including them would bury the signal.
    let solve_wall = run.solve_wall + sweep_report.wall;
    gate::bench_doc(&run, &sweep_report, solve_wall, &recorder.snapshot())
}

/// Machine-readable run summary for tracking solve performance over time:
/// one pretty-printed `ipet-bench-v2` JSON document (schema and sections in
/// [`gate::bench_doc`]). This is the format of the committed
/// `BENCH_baseline.json`; redirect stdout to refresh it.
fn benchjson(jobs: usize, warm: bool, infer: Option<ipet_infer::InferMode>) {
    print!("{}", collect_bench_doc(jobs, warm, infer).render_pretty());
}

/// The deterministic metric lines of the bench document, one `key = value`
/// per line. Identical for any `--jobs` value — CI diffs `counters --jobs
/// 1` against `counters --jobs 8` to prove trace counters are
/// scheduling-independent.
fn counters(jobs: usize, warm: bool, infer: Option<ipet_infer::InferMode>) {
    let doc = collect_bench_doc(jobs, warm, infer);
    let lines = gate::deterministic_lines(&doc).unwrap_or_else(|e| {
        eprintln!("internal error: {e}");
        std::process::exit(1);
    });
    for line in lines {
        println!("{line}");
    }
}

/// `experiments gate BASELINE.json [--tol-wall PCT]`: compares the current
/// run against the committed baseline and exits non-zero on regression.
/// `--write` regenerates the baseline in place instead of comparing — the
/// sanctioned way to refresh `BENCH_baseline.json` after an intentional
/// change (CI's refresh path uses it).
fn gate_cmd(jobs: usize, warm: bool, infer: Option<ipet_infer::InferMode>, args: &[String]) {
    let mut baseline_path: Option<&str> = None;
    let mut write = false;
    let mut config = gate::GateConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--tol-wall" {
            let v = it.next().and_then(|v| v.parse::<f64>().ok()).unwrap_or_else(|| {
                eprintln!("--tol-wall needs a percentage");
                std::process::exit(1);
            });
            config.wall_tolerance_pct = v;
        } else if a == "--write" {
            write = true;
        } else {
            baseline_path = Some(a);
        }
    }
    let Some(path) = baseline_path else {
        eprintln!("usage: experiments gate BASELINE.json [--write] [--tol-wall PCT] [--jobs N]");
        std::process::exit(1);
    };
    if write {
        let doc = collect_bench_doc(jobs, warm, infer).render_pretty();
        std::fs::write(path, doc).unwrap_or_else(|e| {
            eprintln!("gate: cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("gate: wrote fresh baseline to {path}");
        return;
    }
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("gate: cannot read {path}: {e}");
        std::process::exit(1);
    });
    let baseline = ipet_trace::parse_json(&text).unwrap_or_else(|e| {
        eprintln!("gate: {path} is not valid JSON: {e}");
        std::process::exit(1);
    });
    let current = collect_bench_doc(jobs, warm, infer);
    let report = gate::compare(&baseline, &current, &config);
    for note in &report.notes {
        println!("gate: {note}");
    }
    if report.passed() {
        println!("gate: PASS ({path})");
    } else {
        for failure in &report.failures {
            eprintln!("gate: FAIL {failure}");
        }
        eprintln!(
            "gate: {} regression(s) vs {path}; if intentional, refresh with \
             `experiments gate --write {path}`",
            report.failures.len()
        );
        std::process::exit(1);
    }
}

/// The miss-penalty sweep rendered from pooled points (same table as
/// [`sweep`], but solved through the shared pool), plus each routine's
/// certified bound formula.
fn sweep_pooled(pool: &ipet_pool::SolvePool, warm: bool) {
    let s = sweep_miss_penalty_parametric(pool, &SWEEP_PENALTIES, &SWEEP_NAMES, warm);
    print_sweep(&s.points);
    print_regions(&s);
}

/// Renders each routine's bound formula with its certified validity
/// interval on the swept grid, plus the solve/reuse tallies.
fn print_regions(s: &ParametricSweep) {
    println!("== parametric: per-routine bound formulas wcet(p) on penalty p ==");
    println!("{:<16} {:>7} {:>7}   formula", "function", "from", "to");
    for r in &s.regions {
        println!(
            "{:<16} {:>7} {:>7}   wcet(p) = {}",
            r.name, r.from_penalty, r.to_penalty, r.formula
        );
    }
    println!(
        "parametric: {} grid point(s): {} concrete solve(s), {} formula hit(s), \
         {} region exit(s)",
        SWEEP_PENALTIES.len(),
        s.resolves,
        s.region_hits,
        s.region_exits
    );
    println!();
}

fn print_sweep(points: &[SweepPoint]) {
    println!("== sensitivity: estimated WCET vs i-cache miss penalty ==");
    print!("{:<10}", "penalty");
    for n in SWEEP_NAMES {
        print!(" {n:>16}");
    }
    println!();
    for p in points {
        print!("{:<10}", p.miss_penalty);
        for (_, w) in &p.wcet {
            print!(" {:>16}", group_digits(*w));
        }
        println!();
    }
    println!();
}

fn fig1(data: &[BenchData]) {
    println!("== Fig. 1: estimated bound encloses the actual (measured) bound ==");
    println!("{:<16} {:>24} {:>24}  encloses", "function", "estimated", "measured");
    for (name, est, meas, ok) in fig1_rows(data) {
        println!("{name:<16} {:>24} {:>24}  {}", fmt_bound(est), fmt_bound(meas), ok);
    }
    println!();
}

fn figures() {
    println!("== Figs. 2-4: structural constraints extracted from the CFG ==");
    for (title, program) in figure_cfgs() {
        println!("-- {title} --");
        println!("{}", ipet_arch::disassemble_program(&program));
        println!("{}", structural_dump(&program));
    }
}

fn fig6() {
    let (text, est) = fig6_text();
    println!("== Fig. 6: caller/callee path relationship (x4 = x6.f1) ==");
    println!("{text}");
    println!(
        "estimated bound: {}  ({} sets, {} pruned)",
        fmt_bound(est.bound),
        est.sets_total,
        est.sets_pruned
    );
    println!();
}

fn table1(data: &[BenchData]) {
    println!("== Table I: benchmark set ==");
    println!(
        "{:<16} {:>11} {:>10} {:>10} {:>12}",
        "function", "paper-lines", "our-lines", "paper-sets", "our-sets"
    );
    for (name, plines, lines, psets, sets, after) in table1_rows(data) {
        let our = if sets == after { format!("{sets}") } else { format!("{sets})-{after}") };
        println!("{name:<16} {plines:>11} {lines:>10} {psets:>10} {our:>12}");
    }
    println!();
}

fn table23(data: &[BenchData], measured: bool) {
    if measured {
        println!("== Table III: estimated vs measured bound (cycle-level simulation) ==");
    } else {
        println!("== Table II: pessimism in path analysis (estimated vs calculated) ==");
    }
    let reference = if measured { "measured" } else { "calculated" };
    println!("{:<16} {:>24} {:>24} {:>16}", "function", "estimated", reference, "pessimism");
    for (name, est, refb, (pl, pu)) in table23_rows(data, measured) {
        println!(
            "{name:<16} {:>24} {:>24}    [{pl:5.2}, {pu:5.2}]",
            fmt_bound(est),
            fmt_bound(refb)
        );
    }
    println!();
}

fn ilpstats(data: &[BenchData]) {
    println!("== §III-D: ILP solver behaviour (branch & bound) ==");
    println!(
        "{:<16} {:>9} {:>7} {:>24} {:>12}",
        "function", "lp-calls", "nodes", "first-relax-integral", "solve-time"
    );
    let mut all_integral = true;
    for (name, stats, time) in ilp_stat_rows(data) {
        all_integral &= stats.first_relaxation_integral;
        println!(
            "{name:<16} {:>9} {:>7} {:>24} {:>9.2?}",
            stats.lp_calls, stats.nodes, stats.first_relaxation_integral, time
        );
    }
    println!("=> every first LP relaxation integral: {all_integral} (the paper's observation)\n");
}

fn blowup() {
    println!("== §II: explicit path enumeration vs IPET (k sequential diamonds) ==");
    println!(
        "{:<4} {:>12} {:>10} {:>14} {:>9} {:>14}",
        "k", "paths", "truncated", "explicit-time", "lp-calls", "implicit-time"
    );
    for r in blowup_rows(&[2, 4, 6, 8, 10, 12, 14, 16, 18, 20], 2_000_000) {
        println!(
            "{:<4} {:>12} {:>10} {:>11.2?} {:>9} {:>11.2?}",
            r.k,
            group_digits(r.paths),
            r.truncated,
            r.explicit_time,
            r.lp_calls,
            r.implicit_time
        );
    }
    println!();
}

fn ablation() {
    println!("== §IV ablation: all-miss vs first-iteration cache splitting ==");
    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>10}",
        "function", "all-miss", "split", "measured", "tightened"
    );
    for (name, base, split, meas) in ablation_split_rows() {
        let gain = 100.0 * (base - split) as f64 / base as f64;
        println!(
            "{name:<16} {:>12} {:>12} {:>12} {:>9.1}%",
            group_digits(base),
            group_digits(split),
            group_digits(meas),
            gain
        );
    }
    println!();
}

fn sweep() {
    print_sweep(&sweep_miss_penalty(&SWEEP_PENALTIES, &SWEEP_NAMES));
}

/// `experiments parametric [--check]`: the miss-penalty sweep answered by
/// certified bound formulas, printing each routine's `wcet(p)` line with
/// its validity interval on the grid. `--check` re-runs the whole grid
/// with one concrete solve per point and exits 1 unless the two sweeps
/// are bit-identical (the CI `parametric` job runs this at `--jobs 1`
/// and `--jobs 8`).
fn parametric(jobs: usize, warm: bool, args: &[String]) {
    let check = args.iter().any(|a| a == "--check");
    let pool = ipet_pool::SolvePool::new(jobs);
    let s = sweep_miss_penalty_parametric(&pool, &SWEEP_PENALTIES, &SWEEP_NAMES, warm);
    print_sweep(&s.points);
    print_regions(&s);
    if check {
        let concrete_pool = ipet_pool::SolvePool::new(jobs);
        let (concrete, _) =
            sweep_miss_penalty_concrete(&concrete_pool, &SWEEP_PENALTIES, &SWEEP_NAMES, warm);
        let mut failures = 0usize;
        for (got, want) in s.points.iter().zip(&concrete) {
            for ((gn, gw), (wn, ww)) in got.wcet.iter().zip(&want.wcet) {
                assert_eq!(gn, wn);
                if gw != ww {
                    eprintln!(
                        "parametric: MISMATCH {gn} at penalty {}: formula {gw}, concrete {ww}",
                        got.miss_penalty
                    );
                    failures += 1;
                }
            }
        }
        if s.resolves >= SWEEP_PENALTIES.len() as u64 {
            eprintln!(
                "parametric: region reuse never fired ({} solves for {} grid points)",
                s.resolves,
                SWEEP_PENALTIES.len()
            );
            failures += 1;
        }
        if failures > 0 {
            eprintln!("parametric: CHECK FAILED ({failures} failure(s))");
            std::process::exit(1);
        }
        println!(
            "parametric: CHECK PASS — formulas match concrete solves on all {} point(s)",
            SWEEP_PENALTIES.len()
        );
    }
}

fn dsp3210() {
    println!("== §VII: the AT&T DSP3210 port (second machine model) ==");
    println!("{:<16} {:>24} {:>24}  encloses", "function", "estimated", "measured");
    for (name, est, meas, ok) in machine_rows(ipet_hw::Machine::dsp3210()) {
        println!("{name:<16} {:>24} {:>24}  {ok}", fmt_bound(est), fmt_bound(meas));
        assert!(ok, "{name}: unsound on dsp3210");
    }
    println!();
}

fn stress() {
    println!("== stress: random programs, inferred bounds, soundness probes ==");
    let rows = stress_rows(25);
    let mut all = true;
    for r in &rows {
        all &= r.sound;
    }
    println!(
        "{} random programs, {} total loops, all sound: {all}",
        rows.len(),
        rows.iter().map(|r| r.loops).sum::<usize>()
    );
    for r in rows.iter().take(5) {
        println!("  seed {:>3}: {} loops, bound {}", r.seed, r.loops, fmt_bound(r.bound));
    }
    println!();
}

fn dcache() {
    println!("== future work: i960KB fitted with a data cache (hardware-model refinement) ==");
    println!("{:<16} {:>24} {:>24}  encloses", "function", "estimated", "measured");
    for (name, est, meas, ok) in machine_rows(ipet_hw::Machine::i960kb_with_dcache()) {
        println!("{name:<16} {:>24} {:>24}  {ok}", fmt_bound(est), fmt_bound(meas));
        assert!(ok, "{name}: unsound with a data cache");
    }
    println!();
}

fn exhaustive() {
    println!("== actual bound by exhaustive input sweep (infeasible in general; feasible here) ==");
    println!(
        "{:<12} {:>8} {:>22} {:>24} {:>10}",
        "function", "runs", "actual [T_min,T_max]", "estimated [t_min,t_max]", "extremes"
    );
    for r in exhaustive_rows() {
        println!(
            "{:<12} {:>8} {:>22} {:>24} {:>10}",
            r.name,
            group_digits(r.runs),
            fmt_bound(r.actual),
            fmt_bound(r.estimated),
            if r.extremes_confirmed { "confirmed" } else { "NOT!" }
        );
        assert!(r.estimated.encloses(r.actual), "{}: actual bound escapes", r.name);
    }
    println!();
}

fn sensitivity() {
    println!("== WCET sensitivity: cycles gained per extra loop iteration ==");
    println!("{:<16} {:<22} {:>8} {:>14}", "function", "loop", "bound", "delta-cycles");
    for (bench, loop_id, hi, delta) in sensitivity_rows() {
        println!("{bench:<16} {loop_id:<22} {hi:>8} {delta:>14}");
        assert!(delta >= 0, "widening a bound can never shrink the WCET");
    }
    println!();
}

fn budget() {
    println!("== budget: bound quality under shrinking tick deadlines ==");
    println!(
        "{:<12} {:>10} {:>24} {:>8} {:>8} {:>8}  safe",
        "function", "deadline", "bound", "quality", "skipped", "relaxed"
    );
    let rows = budget_rows(&[100_000, 1_000, 100, 10, 0], &["check_data", "piksrt", "des"]);
    for r in &rows {
        let deadline = r.deadline_ticks.map(group_digits).unwrap_or_else(|| "unlimited".into());
        println!(
            "{:<12} {:>10} {:>24} {:>8} {:>8} {:>8}  {}",
            r.name,
            deadline,
            fmt_bound(r.bound),
            r.quality.to_string(),
            r.sets_skipped,
            r.degraded_sets,
            r.safe
        );
    }
    println!();
}
