//! The bench document and the perf-regression gate.
//!
//! `experiments benchjson` emits one `ipet-bench-v2` JSON document per run:
//! the Table I–III bounds, cache traffic, tick totals and the full
//! `ipet-trace` document, split into **deterministic** sections (identical
//! for any `--jobs` value: benchmark bounds, set counts, cache hit/miss,
//! tick totals, trace counters/gauges/span counts) and **timing** sections
//! (wall-clock, per-worker breakdowns, worker count).
//!
//! `experiments gate <baseline.json>` compares the current run against a
//! committed baseline: the deterministic sections must match *exactly* in
//! both directions — a solve count, cache hit count or bound that moves is
//! a regression (or an unrefreshed baseline) — while timing is compared
//! with a generous relative tolerance, since CI machines vary widely, and
//! only a slowdown beyond the tolerance fails.

use crate::PooledRun;
use ipet_pool::BatchReport;
use ipet_trace::{Json, TraceDoc};
use std::collections::BTreeMap;
use std::time::Duration;

/// Version tag of the bench document schema.
pub const BENCH_SCHEMA: &str = "ipet-bench-v2";

/// Assembles the bench document for one pooled run (the Table I–III batch
/// plus the miss-penalty sweep on the same pool) and the trace snapshot
/// recorded across it.
pub fn bench_doc(
    run: &PooledRun,
    sweep: &BatchReport,
    solve_wall: Duration,
    trace: &TraceDoc,
) -> Json {
    let benchmarks = run
        .data
        .iter()
        .map(|d| {
            Json::Obj(vec![
                ("name".to_string(), Json::Str(d.name.clone())),
                ("lower".to_string(), Json::Num(d.estimate.bound.lower as f64)),
                ("upper".to_string(), Json::Num(d.estimate.bound.upper as f64)),
                ("sets_total".to_string(), Json::Num(d.estimate.sets_total as f64)),
                ("sets_pruned".to_string(), Json::Num(d.estimate.sets_pruned as f64)),
                ("quality".to_string(), Json::Str(d.estimate.quality.to_string())),
            ])
        })
        .collect();
    let per_worker: Vec<Json> = run
        .worker_ticks
        .iter()
        .zip(&sweep.worker_ticks)
        .map(|(a, b)| Json::Num((a + b) as f64))
        .collect();
    Json::Obj(vec![
        ("schema".to_string(), Json::Str(BENCH_SCHEMA.to_string())),
        ("jobs".to_string(), Json::Num(run.jobs as f64)),
        ("benchmarks".to_string(), Json::Arr(benchmarks)),
        (
            "cache".to_string(),
            Json::Obj(vec![
                ("hits".to_string(), Json::Num(run.cache.hits as f64)),
                ("misses".to_string(), Json::Num(run.cache.misses as f64)),
                ("rejected".to_string(), Json::Num(run.cache.rejected as f64)),
            ]),
        ),
        ("total_ticks".to_string(), Json::Num((run.total_ticks + sweep.total_ticks) as f64)),
        ("trace".to_string(), trace.to_json()),
        (
            "timing".to_string(),
            Json::Obj(vec![(
                "solve_wall_ms".to_string(),
                Json::Num(solve_wall.as_secs_f64() * 1e3),
            )]),
        ),
        ("per_worker_ticks".to_string(), Json::Arr(per_worker)),
    ])
}

/// The deterministic view of a bench document: sorted `key = value` lines
/// covering everything that must be identical across `--jobs` values and
/// across runs on the same tree. Timing, worker count and per-worker
/// sections are deliberately absent (`experiments counters` prints these
/// lines; CI diffs them across `--jobs 1` / `--jobs 8`).
///
/// # Errors
///
/// Returns a description of the first missing or malformed section.
pub fn deterministic_lines(doc: &Json) -> Result<Vec<String>, String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(BENCH_SCHEMA) => {}
        Some(other) => return Err(format!("unsupported bench schema `{other}`")),
        None => return Err("missing bench schema tag".to_string()),
    }
    let mut lines = Vec::new();
    let benches = doc
        .get("benchmarks")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing benchmarks section".to_string())?;
    for b in benches {
        let name = b
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| "benchmark without a name".to_string())?;
        for field in ["lower", "upper", "sets_total", "sets_pruned"] {
            let v = b
                .get(field)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{name}: missing {field}"))?;
            lines.push(format!("bench.{name}.{field} = {v}"));
        }
        let quality = b
            .get("quality")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{name}: missing quality"))?;
        lines.push(format!("bench.{name}.quality = {quality}"));
    }
    let cache = doc.get("cache").ok_or_else(|| "missing cache section".to_string())?;
    for field in ["hits", "misses", "rejected"] {
        let v = cache
            .get(field)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("cache: missing {field}"))?;
        lines.push(format!("cache.{field} = {v}"));
    }
    let ticks = doc
        .get("total_ticks")
        .and_then(Json::as_u64)
        .ok_or_else(|| "missing total_ticks".to_string())?;
    lines.push(format!("total_ticks = {ticks}"));
    let trace = doc.get("trace").ok_or_else(|| "missing trace section".to_string())?;
    let trace = TraceDoc::from_json(trace).map_err(|e| format!("bad trace section: {e}"))?;
    for (key, value) in trace.deterministic_view() {
        lines.push(format!("trace.{key} = {value}"));
    }
    lines.sort();
    Ok(lines)
}

/// Gate tolerances. Counter invariants always require exact equality; the
/// tolerance only governs wall-clock.
#[derive(Debug, Clone, Copy)]
pub struct GateConfig {
    /// Maximum allowed relative slowdown of `timing.solve_wall_ms`, in
    /// percent. Generous by default — CI machines vary a lot, and the
    /// counters carry the precise signal; timing only catches order-of-
    /// magnitude blowups. Speedups never fail.
    pub wall_tolerance_pct: f64,
    /// Absolute floor, in milliseconds, under which the wall-clock check
    /// never fails. A sub-millisecond baseline phase (fast machine, tiny
    /// suite) would otherwise turn the relative tolerance into a limit of a
    /// few hundred *microseconds* — scheduler noise alone blows that. The
    /// limit is `max(baseline * (1 + pct/100), min_wall_ms)`.
    pub min_wall_ms: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig { wall_tolerance_pct: 300.0, min_wall_ms: 50.0 }
    }
}

/// Outcome of one gate comparison.
#[derive(Debug, Default)]
pub struct GateReport {
    /// Regressions (non-empty fails the gate).
    pub failures: Vec<String>,
    /// Informational lines (timing deltas, section sizes).
    pub notes: Vec<String>,
}

impl GateReport {
    /// True when no regression was found.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Compares `current` against `baseline`: exact match (both directions) on
/// the deterministic view, tolerance-checked wall-clock.
pub fn compare(baseline: &Json, current: &Json, config: &GateConfig) -> GateReport {
    let mut report = GateReport::default();
    let view = |doc: &Json, which: &str, report: &mut GateReport| match deterministic_lines(doc) {
        Ok(lines) => Some(line_map(&lines)),
        Err(e) => {
            report.failures.push(format!("{which}: {e}"));
            None
        }
    };
    let (Some(base), Some(cur)) =
        (view(baseline, "baseline", &mut report), view(current, "current", &mut report))
    else {
        return report;
    };

    for (key, base_value) in &base {
        match cur.get(key) {
            Some(v) if v == base_value => {}
            Some(v) => report.failures.push(format!("{key}: baseline {base_value}, current {v}")),
            None => report.failures.push(format!("{key}: present in baseline, missing now")),
        }
    }
    for key in cur.keys() {
        if !base.contains_key(key) {
            report.failures.push(format!(
                "{key}: new metric absent from baseline (refresh BENCH_baseline.json)"
            ));
        }
    }
    report.notes.push(format!("{} deterministic metrics compared exactly", base.len()));

    let wall =
        |doc: &Json| doc.get("timing").and_then(|t| t.get("solve_wall_ms")).and_then(Json::as_num);
    match (wall(baseline), wall(current)) {
        (Some(base_ms), Some(cur_ms)) => {
            let limit =
                (base_ms * (1.0 + config.wall_tolerance_pct / 100.0)).max(config.min_wall_ms);
            if cur_ms > limit {
                report.failures.push(format!(
                    "timing.solve_wall_ms: {cur_ms:.3} exceeds baseline {base_ms:.3} \
                     by more than {}% (limit {limit:.3})",
                    config.wall_tolerance_pct
                ));
            } else {
                report.notes.push(format!(
                    "timing.solve_wall_ms: {cur_ms:.3} vs baseline {base_ms:.3} \
                     (tolerance {}%)",
                    config.wall_tolerance_pct
                ));
            }
        }
        _ => report.failures.push("timing.solve_wall_ms missing from a document".to_string()),
    }
    report
}

fn line_map(lines: &[String]) -> BTreeMap<String, String> {
    lines
        .iter()
        .filter_map(|l| l.split_once(" = ").map(|(k, v)| (k.to_string(), v.to_string())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipet_trace::parse_json;

    fn sample_doc() -> Json {
        parse_json(
            r#"{
              "schema": "ipet-bench-v2",
              "jobs": 1,
              "benchmarks": [
                {"name": "fft", "lower": 100, "upper": 9000,
                 "sets_total": 1, "sets_pruned": 0, "quality": "exact"}
              ],
              "cache": {"hits": 28, "misses": 56, "rejected": 0},
              "total_ticks": 12345,
              "trace": {"schema": "ipet-trace-v1",
                        "counters": {"lp.ilp.solves": 56},
                        "gauges": {"lp.problem.vars.peak": 141},
                        "spans": {"core.plan": {"count": 9, "wall_ns": 777}},
                        "workers": {"0": {"pool.worker.jobs": 56}}},
              "timing": {"solve_wall_ms": 100.0},
              "per_worker_ticks": [12345]
            }"#,
        )
        .unwrap()
    }

    /// Replaces the first number found at `path`, searching every subtree
    /// for the path's start (so `["upper"]` reaches into the benchmark
    /// array and `["counters", ...]` into the nested trace section).
    fn with_num(doc: &Json, path: &[&str], value: f64) -> Json {
        fn rec(v: &Json, path: &[&str], value: f64) -> Json {
            match v {
                Json::Obj(members) => Json::Obj(
                    members
                        .iter()
                        .map(|(k, inner)| {
                            let replaced = if k == path[0] {
                                if path.len() == 1 {
                                    Json::Num(value)
                                } else {
                                    rec(inner, &path[1..], value)
                                }
                            } else {
                                rec(inner, path, value)
                            };
                            (k.clone(), replaced)
                        })
                        .collect(),
                ),
                Json::Arr(items) => Json::Arr(items.iter().map(|i| rec(i, path, value)).collect()),
                other => other.clone(),
            }
        }
        rec(doc, path, value)
    }

    #[test]
    fn identical_documents_pass() {
        let doc = sample_doc();
        let report = compare(&doc, &doc, &GateConfig::default());
        assert!(report.passed(), "{:?}", report.failures);
    }

    #[test]
    fn deterministic_view_excludes_timing_and_workers() {
        let lines = deterministic_lines(&sample_doc()).unwrap();
        assert!(lines.iter().any(|l| l == "bench.fft.upper = 9000"));
        assert!(lines.iter().any(|l| l == "cache.hits = 28"));
        assert!(lines.iter().any(|l| l == "trace.counter.lp.ilp.solves = 56"));
        assert!(lines.iter().any(|l| l == "trace.span.core.plan.count = 9"));
        assert!(lines.iter().all(|l| !l.contains("wall") && !l.contains("jobs =")), "{lines:?}");
    }

    #[test]
    fn perturbed_counter_invariant_fails() {
        let base = sample_doc();
        for path in [
            &["cache", "hits"][..],
            &["total_ticks"][..],
            &["upper"][..], // benchmark bound (inside the array)
            &["counters", "lp.ilp.solves"][..],
        ] {
            let cur = with_num(&base, path, 9999.0);
            assert_ne!(base, cur, "perturbation at {path:?} must change the doc");
            let report = compare(&base, &cur, &GateConfig::default());
            assert!(!report.passed(), "perturbing {path:?} must fail the gate");
        }
    }

    #[test]
    fn metric_appearing_or_vanishing_fails_both_directions() {
        let base = sample_doc();
        let cur = parse_json(
            &base.render().replace(r#""lp.ilp.solves":56"#, r#""lp.ilp.solves":56,"lp.extra":1"#),
        )
        .unwrap();
        assert!(!compare(&base, &cur, &GateConfig::default()).passed(), "new metric");
        assert!(!compare(&cur, &base, &GateConfig::default()).passed(), "vanished metric");
    }

    #[test]
    fn timing_respects_tolerance_and_direction() {
        let base = sample_doc();
        let slow = with_num(&base, &["timing", "solve_wall_ms"], 1000.0);
        let fast = with_num(&base, &["timing", "solve_wall_ms"], 1.0);
        let cfg = GateConfig::default(); // 300% → limit is 400ms
        assert!(!compare(&base, &slow, &cfg).passed(), "10x slower must fail");
        assert!(compare(&base, &fast, &cfg).passed(), "speedups never fail");
        let loose = GateConfig { wall_tolerance_pct: 2000.0, ..GateConfig::default() };
        assert!(compare(&base, &slow, &loose).passed(), "within loose tolerance");
    }

    #[test]
    fn sub_millisecond_baselines_use_the_wall_floor() {
        // A 0.2 ms baseline would make the 300% limit 0.8 ms — pure noise.
        // The floor keeps anything under `min_wall_ms` passing, while a
        // genuine blowup past the floor still fails.
        let base = with_num(&sample_doc(), &["timing", "solve_wall_ms"], 0.2);
        let noisy = with_num(&base, &["timing", "solve_wall_ms"], 30.0);
        let cfg = GateConfig::default();
        assert!(compare(&base, &noisy, &cfg).passed(), "under the floor never fails");
        let blowup = with_num(&base, &["timing", "solve_wall_ms"], 51.0);
        assert!(!compare(&base, &blowup, &cfg).passed(), "past the floor still fails");
    }

    #[test]
    fn malformed_baseline_fails_cleanly() {
        let report = compare(&Json::Obj(vec![]), &sample_doc(), &GateConfig::default());
        assert!(!report.passed());
        assert!(report.failures[0].contains("baseline"));
    }
}
