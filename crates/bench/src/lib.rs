//! # ipet-bench
//!
//! The experiment harness of the reproduction. The library exposes the
//! data-collection routines; the `experiments` binary renders them as the
//! paper's tables and figures, and the Criterion benches under `benches/`
//! time the solver and the explicit-enumeration baseline.
//!
//! | Paper artifact | Entry point |
//! |---|---|
//! | Fig. 1 (bound containment) | [`fig1_rows`] |
//! | Figs. 2-4 (structural constraints) | [`figure_cfgs`] |
//! | Figs. 5-6 (`check_data` + caller/callee) | [`fig5_text`], [`fig6_text`] |
//! | Table I (benchmarks, sets) | [`table1_rows`] |
//! | Table II (path-analysis pessimism) | [`table23_rows`] |
//! | Table III (estimated vs measured) | [`table23_rows`] |
//! | §III-D (first LP integral) | [`ilp_stat_rows`] |
//! | §II (explicit enumeration blow-up) | [`blowup_rows`] |
//! | §IV (first-iteration cache split) | [`ablation_split_rows`] |

pub mod gate;
pub mod synth;

use ipet_baseline::{diamond_chain_program, PathEnumerator};
use ipet_cfg::{BlockId, Cfg, Instances};
use ipet_core::{structural_text, Analyzer, CacheMode, Estimate, TimeBound};
use ipet_hw::{block_cost, Machine};
use ipet_lp::IlpStats;
use ipet_sim::measure;
use ipet_suite::Benchmark;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Everything measured for one benchmark: the estimate plus the simulated
/// reference bounds.
#[derive(Debug, Clone)]
pub struct BenchData {
    /// Benchmark name.
    pub name: String,
    /// Mini-C line count of this reproduction.
    pub lines: u32,
    /// Paper's reported line count.
    pub paper_lines: u32,
    /// Paper's constraint-set count (before pruning).
    pub paper_sets: u32,
    /// Paper's constraint-set count after pruning.
    pub paper_sets_after: u32,
    /// The IPET estimate.
    pub estimate: Estimate,
    /// Experiment 1's calculated bound (instrumented counts x block costs).
    pub calculated: TimeBound,
    /// Experiment 2's measured bound (cycle-level simulation).
    pub measured: TimeBound,
    /// Wall-clock time spent in ILP solving.
    pub solve_time: Duration,
}

/// Runs the full pipeline on one benchmark.
///
/// # Panics
///
/// Panics if the benchmark fails to compile, analyse or simulate — the
/// test suite keeps all of these green.
pub fn run_benchmark(b: &Benchmark) -> BenchData {
    let program = b.program().unwrap_or_else(|e| panic!("{}: {e}", b.name));
    let machine = Machine::i960kb();
    let analyzer = Analyzer::new(&program, machine).unwrap();
    let ann = b.annotations(&program);
    let start = Instant::now();
    let estimate = analyzer.analyze(&ann).unwrap_or_else(|e| panic!("{}: {e}", b.name));
    let solve_time = start.elapsed();

    let worst = measure(&program, machine, &(b.worst_seeds)(), b.args_worst, true)
        .unwrap_or_else(|e| panic!("{}: {e}", b.name));
    let best = measure(&program, machine, &(b.best_seeds)(), b.args_best, false)
        .unwrap_or_else(|e| panic!("{}: {e}", b.name));
    let calculated = analyzer.calculated_bound(&best.block_counts, &worst.block_counts);
    let measured = TimeBound { lower: best.cycles, upper: worst.cycles };

    BenchData {
        name: b.name.to_string(),
        lines: b.source_lines(),
        paper_lines: b.paper.lines,
        paper_sets: b.paper.sets,
        paper_sets_after: b.paper.sets_after_prune,
        estimate,
        calculated,
        measured,
        solve_time,
    }
}

/// Runs every benchmark (Table I row order).
pub fn run_all() -> Vec<BenchData> {
    ipet_suite::all().iter().map(run_benchmark).collect()
}

/// A [`run_all`] equivalent that batches every benchmark's ILPs through
/// one `ipet-pool` [`SolvePool`](ipet_pool::SolvePool).
#[derive(Debug)]
pub struct PooledRun {
    /// Per-benchmark data, Table I row order. `solve_time` is zero here —
    /// solves interleave across benchmarks, so per-benchmark wall-clock
    /// attribution would be fiction; use [`PooledRun::solve_wall`] instead.
    pub data: Vec<BenchData>,
    /// Worker count the pool ran with.
    pub jobs: usize,
    /// Cache statistics of the batch (deterministic for any `jobs`).
    pub cache: ipet_pool::CacheStats,
    /// Ticks spent per worker (scheduling-dependent; sums deterministically).
    pub worker_ticks: Vec<u64>,
    /// Total simplex ticks of the batch (deterministic for any `jobs`).
    pub total_ticks: u64,
    /// Wall-clock time of the batched solve phase.
    pub solve_wall: Duration,
}

/// Runs every benchmark with the ILP solves batched through a `jobs`-wide
/// work-stealing pool. Estimates, set reports and cache hit/miss counts
/// are bit-for-bit identical for any `jobs` value (and identical to
/// [`run_all`]'s); only wall-clock changes.
///
/// # Panics
///
/// Panics if a benchmark fails to compile, analyse or simulate — the test
/// suite keeps all of these green.
pub fn run_all_pooled(jobs: usize) -> PooledRun {
    run_all_pooled_with(&ipet_pool::SolvePool::new(jobs), true)
}

/// [`run_all_pooled`] against a caller-supplied pool, so several
/// experiments can share one solve cache: a later batch that re-analyzes a
/// benchmark under an overlapping configuration (e.g. the miss-penalty
/// sweep's point at the default penalty) replays instead of re-solving.
///
/// `warm` toggles base+delta warm starting
/// ([`Analyzer::with_warm_start`]); every bound and set report is
/// bit-identical either way — only solver effort changes.
///
/// # Panics
///
/// See [`run_all_pooled`].
pub fn run_all_pooled_with(pool: &ipet_pool::SolvePool, warm: bool) -> PooledRun {
    run_all_pooled_infer(pool, warm, None)
}

/// [`run_all_pooled_with`] with loop-bound inference (`ipet-infer`)
/// applied to every benchmark's annotations before planning. Inference
/// runs in the serial planning phase, so its `infer.*` trace counters are
/// bit-identical for any pool width.
///
/// # Panics
///
/// See [`run_all_pooled`]; additionally panics if inference fails on a
/// bundled benchmark (in `Only` mode a data-dependent loop does fail).
pub fn run_all_pooled_infer(
    pool: &ipet_pool::SolvePool,
    warm: bool,
    infer: Option<ipet_infer::InferMode>,
) -> PooledRun {
    let machine = Machine::i960kb();
    let budget = ipet_core::AnalysisBudget::default();
    // Phase 1 (serial): compile, plan, and gather the simulation
    // references. Plans own their jobs, so nothing borrows the programs
    // once this loop ends.
    struct Prepared {
        bench: Benchmark,
        lines: u32,
        calculated: TimeBound,
        measured: TimeBound,
        plan: ipet_core::AnalysisPlan,
    }
    let prepared: Vec<Prepared> = ipet_suite::all()
        .into_iter()
        .map(|b| {
            let program = b.program().unwrap_or_else(|e| panic!("{}: {e}", b.name));
            let analyzer = Analyzer::new(&program, machine).unwrap().with_warm_start(warm);
            let mut anns = ipet_core::parse_annotations(&b.annotations(&program))
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            if let Some(mode) = infer {
                let module = ipet_lang::parse_module(b.source).ok();
                let outcome = ipet_infer::infer_and_merge(module.as_ref(), &analyzer, &anns, mode)
                    .unwrap_or_else(|e| panic!("{}: {e}", b.name));
                anns = outcome.annotations;
            }
            let plan = analyzer.plan(&anns, &budget).unwrap_or_else(|e| panic!("{}: {e}", b.name));
            let worst = measure(&program, machine, &(b.worst_seeds)(), b.args_worst, true)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            let best = measure(&program, machine, &(b.best_seeds)(), b.args_best, false)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            let calculated = analyzer.calculated_bound(&best.block_counts, &worst.block_counts);
            let measured = TimeBound { lower: best.cycles, upper: worst.cycles };
            let lines = b.source_lines();
            Prepared { bench: b, lines, calculated, measured, plan }
        })
        .collect();

    // Phase 2 (parallel): one batch across all benchmarks, so structurally
    // identical ILPs are solved once even across benchmarks.
    let plans: Vec<ipet_core::AnalysisPlan> = prepared.iter().map(|p| p.plan.clone()).collect();
    let t0 = Instant::now();
    let batch = pool.run_plans(&plans, &budget.solve);
    let solve_wall = t0.elapsed();

    let data = prepared
        .iter()
        .zip(batch.estimates)
        .map(|(p, est)| BenchData {
            name: p.bench.name.to_string(),
            lines: p.lines,
            paper_lines: p.bench.paper.lines,
            paper_sets: p.bench.paper.sets,
            paper_sets_after: p.bench.paper.sets_after_prune,
            estimate: est.unwrap_or_else(|e| panic!("{}: {e}", p.bench.name)),
            calculated: p.calculated,
            measured: p.measured,
            solve_time: Duration::ZERO,
        })
        .collect();

    PooledRun {
        data,
        jobs: pool.workers(),
        cache: pool.cache_stats(),
        worker_ticks: batch.report.worker_ticks,
        total_ticks: batch.report.total_ticks,
        solve_wall,
    }
}

/// Certifies every Table I benchmark's bounds in exact arithmetic: one
/// audited pooled run (`jobs` workers), returning `(name, report)` pairs in
/// Table I order. The estimates are discarded — this is the independent
/// re-verification pass, not the measurement.
///
/// # Panics
///
/// Panics if a benchmark fails to compile, plan or analyse.
pub fn audit_all_pooled(jobs: usize, warm: bool) -> Vec<(String, ipet_core::AuditReport)> {
    let machine = Machine::i960kb();
    let budget = ipet_core::AnalysisBudget::default();
    let mut names = Vec::new();
    let plans: Vec<ipet_core::AnalysisPlan> = ipet_suite::all()
        .into_iter()
        .map(|b| {
            let program = b.program().unwrap_or_else(|e| panic!("{}: {e}", b.name));
            let analyzer = Analyzer::new(&program, machine).unwrap().with_warm_start(warm);
            let anns = ipet_core::parse_annotations(&b.annotations(&program))
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            names.push(b.name.to_string());
            analyzer.plan(&anns, &budget).unwrap_or_else(|e| panic!("{}: {e}", b.name))
        })
        .collect();
    let pool = ipet_pool::SolvePool::new(jobs);
    let batch = pool.run_plans_audited(&plans, &budget.solve);
    names
        .into_iter()
        .zip(batch.results)
        .map(|(name, r)| {
            let (_, report) = r.unwrap_or_else(|e| panic!("{name}: {e}"));
            (name, report)
        })
        .collect()
}

/// Fig. 1 rows: per benchmark, the containment
/// `t_min <= T_min <= T_max <= t_max` with the measured bound standing in
/// for the actual bound.
pub fn fig1_rows(data: &[BenchData]) -> Vec<(String, TimeBound, TimeBound, bool)> {
    data.iter()
        .map(|d| {
            (d.name.clone(), d.estimate.bound, d.measured, d.estimate.bound.encloses(d.measured))
        })
        .collect()
}

/// The three example programs of Figs. 2-4 (if-then-else, while-loop,
/// function call) with their CFG instances, for structural-constraint
/// rendering.
pub fn figure_cfgs() -> Vec<(&'static str, ipet_arch::Program)> {
    use ipet_arch::{AluOp, AsmBuilder, Cond, FuncId, Program, Reg};

    // Fig. 2: if (p) q = 1; else q = 2; r = q;
    let mut b = AsmBuilder::new("fig2_ite");
    let els = b.fresh_label();
    let join = b.fresh_label();
    b.br(Cond::Eq, Reg::A0, 0, els);
    b.ldc(Reg::T0, 1);
    b.jmp(join);
    b.bind(els);
    b.ldc(Reg::T0, 2);
    b.bind(join);
    b.mov(Reg::RV, Reg::T0);
    b.ret();
    let fig2 = Program::new(vec![b.finish().unwrap()], vec![], FuncId(0)).unwrap();

    // Fig. 3: q = p; while (q < 10) q++; r = q;
    let mut b = AsmBuilder::new("fig3_while");
    let head = b.fresh_label();
    let out = b.fresh_label();
    b.mov(Reg::T0, Reg::A0);
    b.bind(head);
    b.br(Cond::Ge, Reg::T0, 10, out);
    b.alu(AluOp::Add, Reg::T0, Reg::T0, 1);
    b.jmp(head);
    b.bind(out);
    b.mov(Reg::RV, Reg::T0);
    b.ret();
    let fig3 = Program::new(vec![b.finish().unwrap()], vec![], FuncId(0)).unwrap();

    // Fig. 4: i = 10; store(i); n = 2*i; store(n);
    let mut store = AsmBuilder::new("store");
    store.nop();
    store.ret();
    let mut main = AsmBuilder::new("fig4_main");
    main.ldc(Reg::A0, 10);
    main.call(FuncId(0));
    main.alu(AluOp::Mul, Reg::A0, Reg::A0, 2);
    main.call(FuncId(0));
    main.ret();
    let fig4 =
        Program::new(vec![store.finish().unwrap(), main.finish().unwrap()], vec![], FuncId(1))
            .unwrap();

    vec![
        ("Fig. 2 (if-then-else)", fig2),
        ("Fig. 3 (while-loop)", fig3),
        ("Fig. 4 (function calls)", fig4),
    ]
}

/// Renders the structural constraints of every instance of a program.
pub fn structural_dump(program: &ipet_arch::Program) -> String {
    let instances = Instances::expand(program, program.entry).unwrap();
    let mut out = String::new();
    for i in 0..instances.len() {
        out.push_str(&structural_text(&instances, ipet_cfg::InstanceId(i)));
    }
    out
}

/// Fig. 5: the annotated `check_data` listing plus its functionality
/// constraints (the paper's eqs. 14-17).
pub fn fig5_text() -> String {
    let b = ipet_suite::by_name("check_data").expect("bundled benchmark");
    let program = b.program().unwrap();
    let ann = b.annotations(&program);
    format!("{}\n{}\nfunctionality constraints:\n{}", b.source, structural_dump(&program), ann)
}

/// Fig. 6: a `task` calling `check_data` then conditionally `clear_data`,
/// with the caller-scoped constraint `x_clear = x_return0 . f1`
/// (paper eq. 18).
pub fn fig6_text() -> (String, Estimate) {
    let source = r#"
const DATASIZE = 10;
int data[DATASIZE];

int check_data() {
    int i;
    int morecheck;
    int wrongone;
    morecheck = 1; i = 0; wrongone = -1;
    while (morecheck) {
        if (data[i] < 0) {
            wrongone = i; morecheck = 0;
        } else {
            i = i + 1;
            if (i >= DATASIZE) morecheck = 0;
        }
    }
    if (wrongone >= 0)
        return 0;
    else
        return 1;
}

int clear_data() {
    int i;
    for (i = 0; i < DATASIZE; i = i + 1) {
        data[i] = 0;
    }
    return 0;
}

int task() {
    int status;
    status = check_data();
    if (status == 0) {
        clear_data();
    }
    return status;
}
"#;
    let program = ipet_lang::compile(source, "task").unwrap();
    // clear_data runs exactly when check_data (at site f1) returns 0, i.e.
    // when its found-negative block x6 executes: x4 of task = x6.f1.
    let annotations = "
fn check_data {
    loop x2 in [1, 10];
    (x6 = 0 & x8 = 1) | (x6 = 1 & x8 = 0);
    x6 = x13;
}
fn clear_data {
    loop x2 in [10, 10];
}
fn task {
    x4 = x6.f1;
}
";
    let machine = Machine::i960kb();
    let analyzer = Analyzer::new(&program, machine).unwrap();
    let est = analyzer.analyze(annotations).unwrap();
    (format!("{source}\nannotations:\n{annotations}"), est)
}

/// Table I rows: `(name, paper lines, our lines, paper sets, our sets,
/// our sets after pruning)`.
pub fn table1_rows(data: &[BenchData]) -> Vec<(String, u32, u32, u32, usize, usize)> {
    data.iter()
        .map(|d| {
            (
                d.name.clone(),
                d.paper_lines,
                d.lines,
                d.paper_sets,
                d.estimate.sets_total,
                d.estimate.sets_total - d.estimate.sets_pruned,
            )
        })
        .collect()
}

/// Table II/III rows: `(name, estimated, reference, pessimism)` where the
/// reference is the calculated bound (Table II) or measured bound
/// (Table III).
pub fn table23_rows(
    data: &[BenchData],
    measured: bool,
) -> Vec<(String, TimeBound, TimeBound, (f64, f64))> {
    data.iter()
        .map(|d| {
            let reference = if measured { d.measured } else { d.calculated };
            let p = d.estimate.bound.pessimism_against(reference);
            (d.name.clone(), d.estimate.bound, reference, p)
        })
        .collect()
}

/// §III-D rows: per benchmark, the aggregate ILP statistics and solve time.
pub fn ilp_stat_rows(data: &[BenchData]) -> Vec<(String, IlpStats, Duration)> {
    data.iter().map(|d| (d.name.clone(), d.estimate.total_stats(), d.solve_time)).collect()
}

/// One row of the explicit-vs-implicit comparison.
#[derive(Debug, Clone, Copy)]
pub struct BlowupRow {
    /// Number of sequential diamonds.
    pub k: usize,
    /// Paths the explicit enumerator walked.
    pub paths: u64,
    /// True when the enumerator hit its budget (unsafe result).
    pub truncated: bool,
    /// Explicit enumeration wall-clock.
    pub explicit_time: Duration,
    /// Explicit WCET (over walked paths).
    pub explicit_wcet: Option<u64>,
    /// ILP LP-call count.
    pub lp_calls: usize,
    /// IPET wall-clock.
    pub implicit_time: Duration,
    /// IPET WCET.
    pub implicit_wcet: u64,
}

/// §II claim: explicit enumeration is exponential in the number of
/// sequential branches, IPET is not. `budget` caps the walked paths.
pub fn blowup_rows(ks: &[usize], budget: u64) -> Vec<BlowupRow> {
    let machine = Machine::i960kb();
    ks.iter()
        .map(|&k| {
            let program = diamond_chain_program(k);
            let cfg = Cfg::build(program.entry, program.entry_function());
            let costs: Vec<_> = cfg
                .blocks
                .iter()
                .map(|b| block_cost(&machine, program.entry_function(), b))
                .collect();

            let t0 = Instant::now();
            let enumerator = PathEnumerator::new(&cfg, &costs, &HashMap::new(), budget).unwrap();
            let r = enumerator.enumerate();
            let explicit_time = t0.elapsed();

            let analyzer = Analyzer::new(&program, machine).unwrap();
            let t1 = Instant::now();
            let est = analyzer.analyze("").unwrap();
            let implicit_time = t1.elapsed();

            // When the explicit walk completes, both methods must agree.
            if !r.truncated {
                assert_eq!(r.worst, Some(est.bound.upper), "k={k}");
                assert_eq!(r.best, Some(est.bound.lower), "k={k}");
            }

            BlowupRow {
                k,
                paths: r.paths_explored,
                truncated: r.truncated,
                explicit_time,
                explicit_wcet: r.worst,
                lp_calls: est.total_stats().lp_calls,
                implicit_time,
                implicit_wcet: est.bound.upper,
            }
        })
        .collect()
}

/// §IV ablation: WCET under all-miss costing vs first-iteration splitting,
/// per benchmark: `(name, all-miss WCET, split WCET, measured worst)`.
pub fn ablation_split_rows() -> Vec<(String, u64, u64, u64)> {
    let machine = Machine::i960kb();
    ipet_suite::all()
        .iter()
        .map(|b| {
            let program = b.program().unwrap();
            let ann = b.annotations(&program);
            let base = Analyzer::new(&program, machine).unwrap();
            let split = Analyzer::new(&program, machine)
                .unwrap()
                .with_cache_mode(CacheMode::FirstIterSplit);
            let e_base = base.analyze(&ann).unwrap();
            let e_split = split.analyze(&ann).unwrap();
            let worst = measure(&program, machine, &(b.worst_seeds)(), b.args_worst, true).unwrap();
            assert!(
                e_split.bound.upper <= e_base.bound.upper,
                "{}: splitting must never loosen the bound",
                b.name
            );
            assert!(worst.cycles <= e_split.bound.upper, "{}: split bound must stay safe", b.name);
            (b.name.to_string(), e_base.bound.upper, e_split.bound.upper, worst.cycles)
        })
        .collect()
}

/// Formats a `TimeBound` the way the paper prints intervals.
pub fn fmt_bound(b: TimeBound) -> String {
    format!("[{}, {}]", group_digits(b.lower), group_digits(b.upper))
}

/// `1234567 -> "1,234,567"`, the paper's digit grouping.
pub fn group_digits(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Marks a loop block id for diagnostics (unused helper kept public for
/// the binary's CFG dumps).
pub fn block_label(b: BlockId) -> String {
    format!("x{}", b.0 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digit_grouping() {
        assert_eq!(group_digits(0), "0");
        assert_eq!(group_digits(999), "999");
        assert_eq!(group_digits(1000), "1,000");
        assert_eq!(group_digits(1234567), "1,234,567");
    }

    #[test]
    fn figures_2_to_4_match_paper_equations() {
        let figs = figure_cfgs();
        let fig2 = structural_dump(&figs[0].1);
        // x1 = d1 = d2 + d3 (entry splits into two arms)
        assert!(fig2.contains("x1 = d1 = d2 + d3"), "{fig2}");
        let fig3 = structural_dump(&figs[1].1);
        // the while header has two in- and two out-edges
        assert!(fig3.lines().any(|l| l.contains("x2 = ") && l.matches('+').count() == 2), "{fig3}");
        let fig4 = structural_dump(&figs[2].1);
        assert!(fig4.contains("f1"), "{fig4}");
        assert!(fig4.contains("d1 = f1 of fig4_main"), "{fig4}");
    }

    #[test]
    fn fig6_caller_scoped_constraint_solves() {
        let (_, est) = fig6_text();
        assert!(est.bound.lower > 0);
        assert!(est.bound.lower <= est.bound.upper);
        // Two sets from check_data's disjunction.
        assert_eq!(est.sets_total, 2);
    }

    #[test]
    fn blowup_explicit_matches_ilp_on_small_k() {
        let rows = blowup_rows(&[2, 4], u64::MAX);
        assert_eq!(rows[0].paths, 4);
        assert_eq!(rows[1].paths, 16);
        for r in rows {
            assert!(!r.truncated);
            assert_eq!(r.explicit_wcet, Some(r.implicit_wcet));
        }
    }

    #[test]
    fn check_data_benchdata_is_consistent() {
        let b = ipet_suite::by_name("check_data").unwrap();
        let d = run_benchmark(&b);
        assert!(d.estimate.bound.encloses(d.calculated));
        assert!(d.estimate.bound.encloses(d.measured));
        assert_eq!(d.estimate.sets_total, 2);
    }

    #[test]
    fn parametric_sweep_matches_concrete_and_reuses_regions() {
        let penalties = [0u64, 2, 4, 8, 16, 32];
        let names = ["check_data"];
        let s =
            sweep_miss_penalty_parametric(&ipet_pool::SolvePool::new(1), &penalties, &names, true);
        let (concrete, _) =
            sweep_miss_penalty_concrete(&ipet_pool::SolvePool::new(1), &penalties, &names, true);
        for (got, want) in s.points.iter().zip(&concrete) {
            assert_eq!(got.miss_penalty, want.miss_penalty);
            assert_eq!(got.wcet, want.wcet, "mp = {}", got.miss_penalty);
        }
        // Region reuse must fire: strictly fewer solves than grid points.
        assert!(s.resolves < penalties.len() as u64, "{} solves", s.resolves);
        assert!(s.region_hits > 0);
        // The formulas' validity intervals tile the whole grid.
        assert!(!s.regions.is_empty());
        assert_eq!(s.regions.first().unwrap().from_penalty, 0);
        assert_eq!(s.regions.last().unwrap().to_penalty, 32);
        // And the serial entry point is the same sweep on a 1-wide pool.
        let serial = sweep_miss_penalty(&penalties, &names);
        for (a, b) in serial.iter().zip(&s.points) {
            assert_eq!(a.wcet, b.wcet);
        }
    }

    #[test]
    fn budget_sweep_degrades_safely() {
        // From unlimited down to a zero-tick deadline, the bound may widen
        // and the quality may drop, but it must never stop enclosing the
        // exact answer.
        let rows = budget_rows(&[10_000, 50, 0], &["check_data"]);
        assert_eq!(rows.len(), 4);
        assert!(rows[0].quality.is_exact());
        for r in &rows {
            assert!(r.safe, "{r:?}");
        }
        // The zero-tick point cannot possibly be exact.
        let starved = rows.last().unwrap();
        assert_eq!(starved.deadline_ticks, Some(0));
        assert!(!starved.quality.is_exact());
        assert!(starved.sets_skipped > 0);
    }
}

/// One point of the miss-penalty sensitivity sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Miss penalty in cycles.
    pub miss_penalty: u64,
    /// `(benchmark, WCET)` at this penalty.
    pub wcet: Vec<(String, u64)>,
}

/// A per-routine WCET bound formula together with the grid sub-range it
/// is certified on: `wcet(p) = formula.constant + formula.slope * p` for
/// every swept penalty in `[from_penalty, to_penalty]` (inclusive).
#[derive(Debug, Clone)]
pub struct SweepRegion {
    /// Benchmark name.
    pub name: String,
    /// First grid penalty covered by this formula.
    pub from_penalty: u64,
    /// Last grid penalty covered by this formula.
    pub to_penalty: u64,
    /// The certified bound line.
    pub formula: ipet_lp::BoundFormula,
}

/// Result of the region-certified parametric miss-penalty sweep.
#[derive(Debug)]
pub struct ParametricSweep {
    /// One series point per penalty value (identical to what the concrete
    /// per-point sweep would report — see DESIGN.md §16).
    pub points: Vec<SweepPoint>,
    /// Per-routine formulas with their certified validity intervals, in
    /// `names` order then ascending penalty.
    pub regions: Vec<SweepRegion>,
    /// Grid points answered by a concrete ILP solve.
    pub resolves: u64,
    /// Grid points answered by formula evaluation alone.
    pub region_hits: u64,
    /// Chord-certificate failures (witness changes between probes).
    pub region_exits: u64,
    /// Merged batch report over every probe's pooled solve.
    pub report: ipet_pool::BatchReport,
}

/// Parameter sweep: how the estimated WCET scales with the i-cache line
/// fill penalty (the knob behind the paper's all-miss conservatism).
/// Returns one series point per penalty value. Delegates to
/// [`sweep_miss_penalty_pooled`] with a single-worker pool.
///
/// # Panics
///
/// Panics if `penalties` is not strictly increasing or a benchmark fails
/// to compile or analyse.
pub fn sweep_miss_penalty(penalties: &[u64], names: &[&str]) -> Vec<SweepPoint> {
    sweep_miss_penalty_pooled(&ipet_pool::SolvePool::new(1), penalties, names, true).0
}

/// [`sweep_miss_penalty`] with the ILPs batched through `pool`, solving
/// only where the chord certificate cannot extend an already-certified
/// bound formula (see [`sweep_miss_penalty_parametric`]). The reported
/// points are bit-identical to a concrete per-point sweep.
///
/// # Panics
///
/// Panics if `penalties` is not strictly increasing or a benchmark fails
/// to compile or analyse.
pub fn sweep_miss_penalty_pooled(
    pool: &ipet_pool::SolvePool,
    penalties: &[u64],
    names: &[&str],
    warm: bool,
) -> (Vec<SweepPoint>, ipet_pool::BatchReport) {
    let s = sweep_miss_penalty_parametric(pool, penalties, names, warm);
    (s.points, s.report)
}

/// The parametric sweep in full: probes the penalty grid with concrete
/// pooled solves only at region boundaries, certifies each witness line
/// over the interval it stays optimal (`ipet-lp`'s chord certificate,
/// re-checked through `ipet-audit`'s exact rationals), and fills every
/// interior grid point by evaluating the certified formula.
///
/// Sharing the pool with an earlier [`run_all_pooled_with`] batch makes a
/// probe at the default i960KB penalty (8 cycles) a pure cache replay:
/// those problems are bit-identical to the Table II/III ones.
///
/// In debug builds (when no trace recorder is installed, so counters stay
/// deterministic) every formula-filled point is shadow-solved concretely
/// and asserted bit-identical; release runs rely on the chord proof plus
/// the CI `parametric` job, which diffs the two paths explicitly.
///
/// # Panics
///
/// Panics if `penalties` is not strictly increasing or a benchmark fails
/// to compile or analyse.
pub fn sweep_miss_penalty_parametric(
    pool: &ipet_pool::SolvePool,
    penalties: &[u64],
    names: &[&str],
    warm: bool,
) -> ParametricSweep {
    let budget = ipet_core::AnalysisBudget::default();
    let mut report = ipet_pool::BatchReport::empty();
    let mut probe = |mp: u64| -> Result<ipet_lp::Probe, std::convert::Infallible> {
        let machine = Machine { miss_penalty: mp, ..Machine::i960kb() };
        let point = machine.param_point();
        let plans: Vec<ipet_core::AnalysisPlan> = names
            .iter()
            .map(|name| {
                let b = ipet_suite::by_name(name).expect("bundled benchmark");
                let program = b.program().unwrap();
                let analyzer = Analyzer::new(&program, machine).unwrap().with_warm_start(warm);
                let anns = ipet_core::parse_annotations(&b.annotations(&program)).unwrap();
                analyzer.plan(&anns, &budget).unwrap()
            })
            .collect();
        let batch = pool.run_plans(&plans, &budget.solve);
        let mut values = Vec::with_capacity(names.len());
        let mut formulas = Vec::with_capacity(names.len());
        for (name, est) in names.iter().zip(batch.estimates) {
            let est = est.unwrap_or_else(|e| panic!("{name}: {e}"));
            values.push(est.bound.upper as i128);
            // A witness line is only handed to the region driver when the
            // exact-rational audit confirms it reproduces this probe's
            // concrete optimum; anything less degrades to per-point solves.
            formulas.push(est.wcet_formula.as_ref().and_then(|f| {
                let (constant, slope) = f.specialize(ipet_hw::P_MISS, &point)?;
                let line = ipet_lp::BoundFormula { constant, slope };
                ipet_core::certify_chord(line, mp, est.bound.upper as i128).then_some(line)
            }));
        }
        report.absorb(batch.report);
        Ok(ipet_lp::Probe { values, formulas })
    };
    let sweep =
        ipet_lp::parametric::sweep_grid(penalties, &mut probe).unwrap_or_else(|e| match e {});

    let points: Vec<SweepPoint> = penalties
        .iter()
        .enumerate()
        .map(|(pi, &mp)| SweepPoint {
            miss_penalty: mp,
            wcet: names
                .iter()
                .enumerate()
                .map(|(ni, name)| {
                    let v = sweep.values[pi][ni];
                    (name.to_string(), u64::try_from(v).expect("WCET fits in u64"))
                })
                .collect(),
        })
        .collect();
    let regions = names
        .iter()
        .enumerate()
        .flat_map(|(ni, name)| {
            sweep.regions(ni).into_iter().map(move |(s, e, formula)| SweepRegion {
                name: name.to_string(),
                from_penalty: penalties[s],
                to_penalty: penalties[e],
                formula,
            })
        })
        .collect();

    // Debug shadow-solve: re-derive every point concretely and require
    // bit-identity. Skipped under an installed recorder so `lp.*` counter
    // totals stay identical across build profiles (the bench gate diffs
    // them exactly); the CI `parametric` job covers recorded runs.
    #[cfg(debug_assertions)]
    if !ipet_trace::enabled() {
        let shadow =
            sweep_miss_penalty_concrete(&ipet_pool::SolvePool::new(1), penalties, names, warm).0;
        for (got, want) in points.iter().zip(&shadow) {
            assert_eq!(got.miss_penalty, want.miss_penalty);
            assert_eq!(got.wcet, want.wcet, "mp = {}", got.miss_penalty);
        }
    }

    ParametricSweep {
        points,
        regions,
        resolves: sweep.resolves,
        region_hits: sweep.region_hits,
        region_exits: sweep.region_exits,
        report,
    }
}

/// The reference sweep: one concrete pooled solve per grid point, no
/// formula reuse. This is what [`sweep_miss_penalty_parametric`] must
/// reproduce bit-for-bit; the CI `parametric` job and the debug
/// shadow-solve both diff against it.
///
/// # Panics
///
/// Panics if a benchmark fails to compile or analyse.
pub fn sweep_miss_penalty_concrete(
    pool: &ipet_pool::SolvePool,
    penalties: &[u64],
    names: &[&str],
    warm: bool,
) -> (Vec<SweepPoint>, ipet_pool::BatchReport) {
    let budget = ipet_core::AnalysisBudget::default();
    let mut plans = Vec::new();
    for &mp in penalties {
        let machine = Machine { miss_penalty: mp, ..Machine::i960kb() };
        for name in names {
            let b = ipet_suite::by_name(name).expect("bundled benchmark");
            let program = b.program().unwrap();
            let analyzer = Analyzer::new(&program, machine).unwrap().with_warm_start(warm);
            let anns = ipet_core::parse_annotations(&b.annotations(&program)).unwrap();
            plans.push(analyzer.plan(&anns, &budget).unwrap());
        }
    }
    let batch = pool.run_plans(&plans, &budget.solve);
    let points = penalties
        .iter()
        .enumerate()
        .map(|(pi, &mp)| SweepPoint {
            miss_penalty: mp,
            wcet: names
                .iter()
                .enumerate()
                .map(|(ni, name)| {
                    let est = batch.estimates[pi * names.len() + ni]
                        .as_ref()
                        .unwrap_or_else(|e| panic!("{name}: {e}"));
                    (name.to_string(), est.bound.upper)
                })
                .collect(),
        })
        .collect();
    (points, batch.report)
}

/// One point of the budget-degradation sweep: what bound (and of what
/// quality) a benchmark yields when the solver is limited to
/// `deadline_ticks` simplex pivots.
#[derive(Debug, Clone)]
pub struct BudgetRow {
    /// Benchmark name.
    pub name: String,
    /// Tick deadline applied (`None` = unlimited, the reference point).
    pub deadline_ticks: Option<u64>,
    /// The (possibly degraded) estimate.
    pub bound: TimeBound,
    /// How trustworthy the bound is at this budget.
    pub quality: ipet_core::BoundQuality,
    /// Constraint sets skipped outright at this budget.
    pub sets_skipped: usize,
    /// Constraint sets reported from an LP-relaxation bound.
    pub degraded_sets: usize,
    /// Whether the degraded bound still encloses the unlimited bound.
    pub safe: bool,
}

/// Budget sweep: each benchmark analysed under a descending series of tick
/// deadlines, showing the graceful-degradation cascade (exact → relaxed /
/// partial) and checking that every degraded bound stays an enclosure of
/// the exact one.
pub fn budget_rows(deadlines: &[u64], names: &[&str]) -> Vec<BudgetRow> {
    use ipet_core::AnalysisBudget;
    let machine = Machine::i960kb();
    let mut rows = Vec::new();
    for name in names {
        let b = ipet_suite::by_name(name).expect("bundled benchmark");
        let program = b.program().unwrap();
        let analyzer = Analyzer::new(&program, machine).unwrap();
        let ann = b.annotations(&program);
        let exact = analyzer.analyze(&ann).unwrap();
        rows.push(BudgetRow {
            name: name.to_string(),
            deadline_ticks: None,
            bound: exact.bound,
            quality: exact.quality,
            sets_skipped: exact.sets_skipped,
            degraded_sets: exact.degraded_sets.len(),
            safe: true,
        });
        for &ticks in deadlines {
            let mut budget = AnalysisBudget::unlimited();
            budget.solve.deadline_ticks = Some(ticks);
            let est = analyzer.analyze_with(&ann, &budget).unwrap();
            rows.push(BudgetRow {
                name: name.to_string(),
                deadline_ticks: Some(ticks),
                bound: est.bound,
                quality: est.quality,
                sets_skipped: est.sets_skipped,
                degraded_sets: est.degraded_sets.len(),
                safe: est.bound.encloses(exact.bound),
            });
        }
    }
    rows
}

/// Cross-machine comparison (the §VII DSP3210 port): estimated and
/// measured bounds of each benchmark on a second target.
pub fn machine_rows(machine: Machine) -> Vec<(String, TimeBound, TimeBound, bool)> {
    ipet_suite::all()
        .iter()
        .map(|b| {
            let program = b.program().unwrap();
            let analyzer = Analyzer::new(&program, machine).unwrap();
            let est = analyzer.analyze(&b.annotations(&program)).unwrap();
            let worst = measure(&program, machine, &(b.worst_seeds)(), b.args_worst, true).unwrap();
            let best = measure(&program, machine, &(b.best_seeds)(), b.args_best, false).unwrap();
            let measured = TimeBound { lower: best.cycles, upper: worst.cycles };
            (b.name.to_string(), est.bound, measured, est.bound.encloses(measured))
        })
        .collect()
}

/// Stress result for one random program.
#[derive(Debug, Clone, Copy)]
pub struct StressRow {
    /// Generator seed.
    pub seed: u64,
    /// Loops generated (all bounded by inference).
    pub loops: usize,
    /// The estimated bound.
    pub bound: TimeBound,
    /// True when every probe run landed inside the bound.
    pub sound: bool,
}

/// Stress sweep: `count` random programs, automatic loop-bound inference
/// (AST rules via `ipet-infer`, zero annotations), soundness probes on a
/// few inputs each.
pub fn stress_rows(count: u64) -> Vec<StressRow> {
    use ipet_sim::{SimConfig, Simulator};
    let machine = Machine::i960kb();
    (0..count)
        .map(|seed| {
            let s = synth::generate(seed, synth::SynthConfig::default());
            let analyzer = Analyzer::new(&s.program, machine).unwrap();
            let outcome = ipet_infer::infer_and_merge(
                Some(&s.module),
                &analyzer,
                &ipet_core::Annotations::default(),
                ipet_infer::InferMode::Only,
            )
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let est = analyzer.analyze_parsed(&outcome.annotations).unwrap();
            let mut sound = true;
            for a in [-9, -1, 0, 3, 8] {
                let mut sim = Simulator::new(&s.program, machine, SimConfig::default());
                let r = sim.run(&[a]).unwrap();
                sound &= est.bound.lower <= r.cycles && r.cycles <= est.bound.upper;
            }
            StressRow { seed, loops: s.num_loops, bound: est.bound, sound }
        })
        .collect()
}

/// Result of exhaustively running a routine over an entire input family.
#[derive(Debug, Clone)]
pub struct ExhaustiveRow {
    /// Benchmark name.
    pub name: String,
    /// Number of inputs executed.
    pub runs: u64,
    /// The *actual* bound `[T_min, T_max]` over the family.
    pub actual: TimeBound,
    /// The estimated bound.
    pub estimated: TimeBound,
    /// True when the identified extreme-case data sets really are extreme
    /// within the family (the paper's "if the analysis result agrees with
    /// our selection of the data set, then it will be the worst case").
    pub extremes_confirmed: bool,
}

/// The paper notes that computing the actual bound "would have to run the
/// routine for all possible inputs — this is clearly not feasible". For
/// two small routines it *is* feasible over a structured input family;
/// this experiment does exactly that, establishing the true `[T_min,
/// T_max]` and confirming both the containment and the hand-identified
/// extreme data sets.
pub fn exhaustive_rows() -> Vec<ExhaustiveRow> {
    use ipet_sim::{SimConfig, Simulator};
    let machine = Machine::i960kb();
    let mut out = Vec::new();

    // check_data over every sign pattern of 10 elements (negative values
    // trigger the early exit; magnitudes are irrelevant to control flow).
    {
        let b = ipet_suite::by_name("check_data").expect("bundled");
        let program = b.program().unwrap();
        let analyzer = Analyzer::new(&program, machine).unwrap();
        let est = analyzer.analyze(&b.annotations(&program)).unwrap();
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        let mut runs = 0u64;
        for mask in 0u32..(1 << 10) {
            let data: Vec<i32> = (0..10).map(|i| if mask >> i & 1 == 1 { -1 } else { 5 }).collect();
            let mut sim = Simulator::new(&program, machine, SimConfig::default());
            sim.seed_global("data", &data).unwrap();
            let r = sim.run(&[]).unwrap();
            lo = lo.min(r.cycles);
            hi = hi.max(r.cycles);
            runs += 1;
        }
        let worst = measure(&program, machine, &(b.worst_seeds)(), b.args_worst, true).unwrap();
        // Best-case protocol uses a warm cache; the exhaustive sweep runs
        // cold, so compare like with like: the cold-run minimum must be
        // attained by the identified best-case data under the same protocol.
        let mut sim = Simulator::new(&program, machine, SimConfig::default());
        for (name, data) in (b.best_seeds)() {
            sim.seed_global(name, &data).unwrap();
        }
        let best_cold = sim.run(&[]).unwrap();
        let actual = TimeBound { lower: lo, upper: hi };
        out.push(ExhaustiveRow {
            name: b.name.to_string(),
            runs,
            actual,
            estimated: est.bound,
            extremes_confirmed: worst.cycles == hi && best_cold.cycles == lo,
        });
    }

    // piksrt over every permutation of 8 distinct elements (40,320 runs).
    {
        let b = ipet_suite::by_name("piksrt").expect("bundled");
        // Shrink to n = 8 by seeding the tail with already-sorted sentinels
        // larger than every permuted element: the tail contributes a fixed
        // amount of work across all runs.
        let program = b.program().unwrap();
        let analyzer = Analyzer::new(&program, machine).unwrap();
        let est = analyzer.analyze(&b.annotations(&program)).unwrap();
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        let mut runs = 0u64;
        let mut perm: Vec<i32> = (0..8).collect();
        // Heap's algorithm, iterative.
        let mut c = [0usize; 8];
        let measure_perm = |perm: &[i32], lo: &mut u64, hi: &mut u64, runs: &mut u64| {
            let mut data: Vec<i32> = perm.to_vec();
            data.extend([100, 101]); // sorted tail, larger than all
            let mut sim = Simulator::new(&program, machine, SimConfig::default());
            sim.seed_global("arr", &data).unwrap();
            let r = sim.run(&[]).unwrap();
            *lo = (*lo).min(r.cycles);
            *hi = (*hi).max(r.cycles);
            *runs += 1;
        };
        measure_perm(&perm, &mut lo, &mut hi, &mut runs);
        let mut i = 0;
        while i < 8 {
            if c[i] < i {
                if i % 2 == 0 {
                    perm.swap(0, i);
                } else {
                    perm.swap(c[i], i);
                }
                measure_perm(&perm, &mut lo, &mut hi, &mut runs);
                c[i] += 1;
                i = 0;
            } else {
                c[i] = 0;
                i += 1;
            }
        }
        let actual = TimeBound { lower: lo, upper: hi };
        // The reverse-sorted prefix must attain the maximum.
        let mut rev: Vec<i32> = (0..8).rev().collect();
        rev.extend([100, 101]);
        let mut sim = Simulator::new(&program, machine, SimConfig::default());
        sim.seed_global("arr", &rev).unwrap();
        let rev_cycles = sim.run(&[]).unwrap().cycles;
        out.push(ExhaustiveRow {
            name: b.name.to_string(),
            runs,
            actual,
            estimated: est.bound,
            extremes_confirmed: rev_cycles == hi,
        });
    }

    out
}

/// Writes every table as a CSV file into `dir` (created if missing), for
/// external plotting: `table1.csv`, `table2.csv`, `table3.csv`,
/// `ilpstats.csv`, `blowup.csv`, `ablation.csv`, `sweep.csv`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csvs(dir: &std::path::Path, data: &[BenchData]) -> std::io::Result<()> {
    use std::io::Write as _;
    std::fs::create_dir_all(dir)?;
    let w = |name: &str, header: &str, rows: Vec<String>| -> std::io::Result<()> {
        let mut f = std::fs::File::create(dir.join(name))?;
        writeln!(f, "{header}")?;
        for r in rows {
            writeln!(f, "{r}")?;
        }
        Ok(())
    };

    w(
        "table1.csv",
        "function,paper_lines,our_lines,paper_sets,our_sets,our_sets_after_prune",
        table1_rows(data)
            .into_iter()
            .map(|(n, pl, l, ps, s, a)| format!("{n},{pl},{l},{ps},{s},{a}"))
            .collect(),
    )?;
    for (name, measured) in [("table2.csv", false), ("table3.csv", true)] {
        w(
            name,
            "function,est_lower,est_upper,ref_lower,ref_upper,pessimism_lower,pessimism_upper",
            table23_rows(data, measured)
                .into_iter()
                .map(|(n, e, r, (pl, pu))| {
                    format!("{n},{},{},{},{},{pl:.4},{pu:.4}", e.lower, e.upper, r.lower, r.upper)
                })
                .collect(),
        )?;
    }
    w(
        "ilpstats.csv",
        "function,lp_calls,nodes,first_relaxation_integral,solve_time_us",
        ilp_stat_rows(data)
            .into_iter()
            .map(|(n, st, t)| {
                format!(
                    "{n},{},{},{},{}",
                    st.lp_calls,
                    st.nodes,
                    st.first_relaxation_integral,
                    t.as_micros()
                )
            })
            .collect(),
    )?;
    w(
        "blowup.csv",
        "k,paths,truncated,explicit_us,implicit_us,lp_calls",
        blowup_rows(&[2, 4, 6, 8, 10, 12, 14, 16], 2_000_000)
            .into_iter()
            .map(|r| {
                format!(
                    "{},{},{},{},{},{}",
                    r.k,
                    r.paths,
                    r.truncated,
                    r.explicit_time.as_micros(),
                    r.implicit_time.as_micros(),
                    r.lp_calls
                )
            })
            .collect(),
    )?;
    w(
        "ablation.csv",
        "function,all_miss_wcet,split_wcet,measured_worst",
        ablation_split_rows().into_iter().map(|(n, b, s, m)| format!("{n},{b},{s},{m}")).collect(),
    )?;
    let sweep = sweep_miss_penalty(&[0, 2, 4, 8, 16, 32], &["check_data", "fft", "matgen"]);
    w(
        "sweep.csv",
        "miss_penalty,function,wcet",
        sweep
            .into_iter()
            .flat_map(|p| {
                p.wcet.into_iter().map(move |(n, wcet)| format!("{},{n},{wcet}", p.miss_penalty))
            })
            .collect(),
    )?;
    Ok(())
}

/// WCET sensitivity rows: for every loop-bound annotation of every
/// benchmark, the marginal cost (in cycles) of one extra iteration.
pub fn sensitivity_rows() -> Vec<(String, String, i64, i64)> {
    let machine = Machine::i960kb();
    let mut out = Vec::new();
    for b in ipet_suite::all() {
        let program = b.program().unwrap();
        let analyzer = Analyzer::new(&program, machine).unwrap();
        let ann = b.annotations(&program);
        for (func, si, hi, delta) in analyzer.wcet_sensitivity(&ann).unwrap() {
            out.push((b.name.to_string(), format!("{func}#{si}"), hi, delta));
        }
    }
    out
}

#[cfg(test)]
mod param_proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Acceptance property of the parametric refactor: over random
        /// synthetic programs, the region-certified sweep's values are
        /// bit-identical to a concrete solve at every grid point.
        #[test]
        fn formula_sweep_matches_concrete_on_synth_programs(seed in 0u64..25) {
            let s = synth::generate(seed, synth::SynthConfig::default());
            let anns = {
                let analyzer = Analyzer::new(&s.program, Machine::i960kb()).unwrap();
                ipet_infer::infer_and_merge(
                    Some(&s.module),
                    &analyzer,
                    &ipet_core::Annotations::default(),
                    ipet_infer::InferMode::Only,
                )
                .unwrap()
                .annotations
            };
            let grid = [0u64, 2, 4, 8, 16, 32];
            let mut probe = |mp: u64| -> Result<ipet_lp::Probe, std::convert::Infallible> {
                let m = Machine { miss_penalty: mp, ..Machine::i960kb() };
                let est = Analyzer::new(&s.program, m).unwrap().analyze_parsed(&anns).unwrap();
                let line = est.wcet_formula.as_ref().and_then(|f| {
                    let (constant, slope) = f.specialize(ipet_hw::P_MISS, &m.param_point())?;
                    Some(ipet_lp::BoundFormula { constant, slope })
                });
                Ok(ipet_lp::Probe { values: vec![est.bound.upper as i128], formulas: vec![line] })
            };
            let sweep = ipet_lp::parametric::sweep_grid(&grid, &mut probe)
                .unwrap_or_else(|e| match e {});
            for (i, &mp) in grid.iter().enumerate() {
                let m = Machine { miss_penalty: mp, ..Machine::i960kb() };
                let est = Analyzer::new(&s.program, m).unwrap().analyze_parsed(&anns).unwrap();
                prop_assert_eq!(
                    sweep.values[i][0],
                    est.bound.upper as i128,
                    "seed {} penalty {}",
                    seed,
                    mp
                );
            }
        }
    }
}

#[cfg(test)]
mod exhaustive_tests {
    use super::*;

    /// The full sweep takes tens of seconds in debug builds; run with
    /// `cargo test -p ipet-bench -- --ignored` (or rely on
    /// `experiments exhaustive`, which asserts the same invariants).
    #[test]
    #[ignore = "slow: 41k simulator runs"]
    fn exhaustive_sweep_confirms_extremes() {
        for r in exhaustive_rows() {
            assert!(r.estimated.encloses(r.actual), "{}", r.name);
            assert!(r.extremes_confirmed, "{}", r.name);
        }
    }
}
