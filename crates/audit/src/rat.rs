//! Exact dyadic-rational arithmetic over `i128`.
//!
//! Every finite `f64` is exactly `m · 2^e` for integers `m`, `e`, so any
//! constraint coefficient or objective coefficient the solver saw can be
//! represented *exactly* as a dyadic rational `num / 2^shift`. The checker
//! converts each coefficient once — by decomposing the IEEE-754 bit pattern,
//! never by floating-point arithmetic — and then works in integers only.
//!
//! Operations are checked: anything that would overflow `i128` reports
//! `None`, which the certifier surfaces as an explicit `Overflow` rejection
//! rather than a silently wrong verdict. In practice IPET coefficients are
//! small integers (block costs, `±1` flow terms, loop bounds), so the
//! dyadic denominators are `2^0` and overflow is unreachable.

use std::cmp::Ordering;

/// A dyadic rational `num / 2^shift`, normalized so `shift` is minimal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rat {
    num: i128,
    shift: u32,
}

/// Left-shifts with overflow detection (`i128::checked_shl` only checks the
/// shift *amount*, not value overflow).
fn shl_checked(n: i128, s: u32) -> Option<i128> {
    if n == 0 || s == 0 {
        return Some(n);
    }
    if s >= 127 {
        return None;
    }
    n.checked_mul(1i128 << s)
}

impl Rat {
    /// The rational zero.
    pub const ZERO: Rat = Rat { num: 0, shift: 0 };

    /// An exact integer.
    pub fn from_int(n: i128) -> Rat {
        Rat { num: n, shift: 0 }
    }

    /// Decomposes a finite `f64` into its exact dyadic value by inspecting
    /// the IEEE-754 bit pattern. Returns `None` for NaN and infinities.
    /// This is the only place a float enters the checker, and no
    /// floating-point arithmetic happens here — only bit manipulation.
    pub fn from_f64(v: f64) -> Option<Rat> {
        let bits = v.to_bits();
        let negative = bits >> 63 == 1;
        let exp_bits = ((bits >> 52) & 0x7ff) as i32;
        let frac = (bits & ((1u64 << 52) - 1)) as i128;
        if exp_bits == 0x7ff {
            return None; // NaN or infinity
        }
        // value = mantissa * 2^e
        let (mantissa, e) = if exp_bits == 0 {
            (frac, -1074) // subnormal (or zero)
        } else {
            (frac | (1i128 << 52), exp_bits - 1075)
        };
        let mantissa = if negative { -mantissa } else { mantissa };
        let rat = if e >= 0 {
            Rat { num: shl_checked(mantissa, e as u32)?, shift: 0 }
        } else {
            Rat { num: mantissa, shift: (-e) as u32 }
        };
        Some(rat.normalized())
    }

    /// Strips common factors of two so equal values compare bit-equal and
    /// shifts stay small.
    fn normalized(mut self) -> Rat {
        if self.num == 0 {
            return Rat::ZERO;
        }
        while self.shift > 0 && self.num % 2 == 0 {
            self.num /= 2;
            self.shift -= 1;
        }
        self
    }

    /// Exact sum; `None` on overflow.
    pub fn add_checked(self, other: Rat) -> Option<Rat> {
        let shift = self.shift.max(other.shift);
        let a = shl_checked(self.num, shift - self.shift)?;
        let b = shl_checked(other.num, shift - other.shift)?;
        Some(Rat { num: a.checked_add(b)?, shift }.normalized())
    }

    /// Exact product with an integer; `None` on overflow.
    pub fn mul_int(self, k: i128) -> Option<Rat> {
        Some(Rat { num: self.num.checked_mul(k)?, shift: self.shift }.normalized())
    }

    /// Exact three-way comparison; `None` on (alignment) overflow.
    pub fn cmp_exact(self, other: Rat) -> Option<Ordering> {
        let shift = self.shift.max(other.shift);
        let a = shl_checked(self.num, shift - self.shift)?;
        let b = shl_checked(other.num, shift - other.shift)?;
        Some(a.cmp(&b))
    }

    /// The exact integer value, when the rational is an integer.
    pub fn as_int(self) -> Option<i128> {
        if self.shift == 0 {
            Some(self.num)
        } else {
            None // normalized: shift > 0 means the value is fractional
        }
    }

    /// Renders the exact value (`num` or `num/2^shift`).
    pub fn render(self) -> String {
        if self.shift == 0 {
            format!("{}", self.num)
        } else {
            format!("{}/2^{}", self.num, self.shift)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_convert_exactly() {
        for v in [0.0, 1.0, -1.0, 42.0, 1_000_000.0, -987_654.0] {
            let r = Rat::from_f64(v).unwrap();
            assert_eq!(r, Rat::from_int(v as i128), "{v}");
            assert_eq!(r.as_int(), Some(v as i128));
        }
    }

    #[test]
    fn dyadic_fractions_convert_exactly() {
        // 0.5 = 1/2, 0.75 = 3/4, -2.25 = -9/4
        assert_eq!(Rat::from_f64(0.5).unwrap(), Rat { num: 1, shift: 1 });
        assert_eq!(Rat::from_f64(0.75).unwrap(), Rat { num: 3, shift: 2 });
        assert_eq!(Rat::from_f64(-2.25).unwrap(), Rat { num: -9, shift: 2 });
        // 0.1 is NOT 1/10 in binary; it must still convert exactly to
        // whatever dyadic the f64 actually holds, and 10 * 0.1 != 1.
        let tenth = Rat::from_f64(0.1).unwrap();
        assert_ne!(tenth.mul_int(10).unwrap(), Rat::from_int(1));
    }

    #[test]
    fn non_finite_is_refused() {
        assert_eq!(Rat::from_f64(f64::NAN), None);
        assert_eq!(Rat::from_f64(f64::INFINITY), None);
        assert_eq!(Rat::from_f64(f64::NEG_INFINITY), None);
    }

    #[test]
    fn arithmetic_is_exact() {
        let half = Rat::from_f64(0.5).unwrap();
        let quarter = Rat::from_f64(0.25).unwrap();
        assert_eq!(half.add_checked(quarter).unwrap(), Rat::from_f64(0.75).unwrap());
        assert_eq!(half.add_checked(half).unwrap(), Rat::from_int(1));
        assert_eq!(half.mul_int(6).unwrap(), Rat::from_int(3));
        assert_eq!(half.cmp_exact(quarter), Some(Ordering::Greater));
        assert_eq!(half.cmp_exact(half), Some(Ordering::Equal));
    }

    #[test]
    fn overflow_is_reported_not_wrapped() {
        let big = Rat::from_int(i128::MAX);
        assert_eq!(big.mul_int(2), None);
        assert_eq!(big.add_checked(Rat::from_int(1)), None);
        // Aligning a tiny denominator against a huge numerator overflows.
        let tiny = Rat { num: 1, shift: 120 };
        assert_eq!(big.add_checked(tiny), None);
    }

    #[test]
    fn subnormals_convert() {
        let min_sub = f64::from_bits(1); // smallest positive subnormal
        let r = Rat::from_f64(min_sub).unwrap();
        assert_eq!(r, Rat { num: 1, shift: 1074 });
    }
}
