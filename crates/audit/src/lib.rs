//! # ipet-audit
//!
//! An independent certifier for every bound the IPET pipeline reports.
//!
//! The paper's claim rests entirely on trusting `max Σ c_i·x_i`: a silent
//! solver bug or f64 rounding slip corrupts the reported tables without any
//! visible failure. Following the cross-validation discipline of the WCET
//! literature (Prantl et al.; Bundala & Seshia), this crate re-verifies each
//! solved constraint set from first principles, using **exact arithmetic
//! only** — the checker performs zero floating-point operations. Floats
//! enter in exactly two sanctioned ways:
//!
//! 1. the witness vector is rounded to integer counts by
//!    [`ipet_lp::round_witness`] under the one centralized tolerance
//!    (floating-point is allowed *there*, in the rounding layer, never here);
//! 2. every f64 constraint/objective coefficient is decomposed bit-wise into
//!    its exact dyadic rational `m · 2^e` ([`rat::Rat`]) — a finite f64 *is*
//!    such a rational, so the conversion loses nothing.
//!
//! ## The certificate
//!
//! For a claimed bound with witness `x` the certifier checks:
//!
//! * **(a) feasibility** — the rounded witness satisfies *every* structural
//!   and functionality row of the solved [`Problem`] exactly
//!   ([`certify_witness`]);
//! * **(b) objective replay** — `Σ c_i·x_i` recomputed exactly equals the
//!   claimed bound (`Exact` quality), or is covered by it (`Relaxed`);
//! * **(c) flow conservation** — the witness replays on the actual CFG
//!   (`d_entry = 1`, in-flow = out-flow per block, call-site coupling)
//!   via a [`FlowSpec`] built from the CFG topology, independently of the
//!   constraint matrix the solver saw;
//! * **(d) cache replays** — `ipet-pool` runs [`certify_witness`] on every
//!   cached witness against the *new* problem before accepting a replay,
//!   upgrading the old tolerance heuristic into a proof.
//!
//! Any failed check is an explicit [`CertFailure`]; even internal overflow
//! rejects the certificate rather than guessing.

use std::fmt;

use ipet_lp::{round_witness, Problem, Relation, RoundError};

mod rat;

pub use rat::Rat;

/// Why a certificate was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum CertFailure {
    /// The witness vector refused to round to integer counts.
    BadWitness(RoundError),
    /// The claimed bound is not an integer count of cycles.
    BadClaim(RoundError),
    /// Witness length does not match the problem's variable count.
    ArityMismatch {
        /// Variables in the problem.
        expected: usize,
        /// Entries in the witness.
        got: usize,
    },
    /// A constraint coefficient or right-hand side is NaN/infinite.
    NonFiniteCoefficient {
        /// Constraint row index (`usize::MAX` for the objective).
        row: usize,
    },
    /// The rounded witness violates a constraint row exactly.
    ConstraintViolated {
        /// Constraint row index.
        row: usize,
        /// Exact left-hand side, rendered.
        lhs: String,
        /// The row's relation.
        relation: Relation,
        /// Exact right-hand side, rendered.
        rhs: String,
    },
    /// The exactly recomputed objective differs from the claimed bound.
    ObjectiveMismatch {
        /// Exact `Σ c_i·x_i`, rendered.
        computed: String,
        /// The claimed bound.
        claimed: i64,
    },
    /// A relaxed outer bound fails to cover its own witnessed incumbent.
    BoundViolatesWitness {
        /// The claimed outer bound.
        bound: i64,
        /// The exactly witnessed objective value.
        witnessed: i64,
    },
    /// The CFG entry edge does not execute exactly once.
    FlowEntryMismatch {
        /// The witnessed entry-edge count.
        got: i64,
    },
    /// In-flow or out-flow of a block disagrees with its execution count.
    FlowImbalance {
        /// Index of the block variable.
        block: usize,
        /// Witnessed block count.
        count: i64,
        /// Witnessed in-flow.
        inflow: i128,
        /// Witnessed out-flow.
        outflow: i128,
    },
    /// A callee's entry count disagrees with the sum of caller f-edges.
    CouplingMismatch {
        /// Index of the callee entry-edge variable.
        entry: usize,
        /// Witnessed entry count.
        got: i64,
        /// Sum of the witnessed caller f-edge counts.
        expected: i128,
    },
    /// Exact arithmetic overflowed `i128` — reject rather than guess.
    Overflow,
}

impl fmt::Display for CertFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertFailure::BadWitness(e) => write!(f, "witness not integral: {e}"),
            CertFailure::BadClaim(e) => write!(f, "claimed bound not integral: {e}"),
            CertFailure::ArityMismatch { expected, got } => {
                write!(f, "witness has {got} entries, problem has {expected} variables")
            }
            CertFailure::NonFiniteCoefficient { row } => {
                write!(f, "non-finite coefficient in row {row}")
            }
            CertFailure::ConstraintViolated { row, lhs, relation, rhs } => {
                write!(f, "row {row} violated: {lhs} {relation} {rhs} is false")
            }
            CertFailure::ObjectiveMismatch { computed, claimed } => {
                write!(f, "objective replay {computed} != claimed {claimed}")
            }
            CertFailure::BoundViolatesWitness { bound, witnessed } => {
                write!(f, "outer bound {bound} does not cover witnessed value {witnessed}")
            }
            CertFailure::FlowEntryMismatch { got } => {
                write!(f, "entry edge executes {got} times, expected 1")
            }
            CertFailure::FlowImbalance { block, count, inflow, outflow } => {
                write!(
                    f,
                    "flow imbalance at block var {block}: count {count}, in {inflow}, out {outflow}"
                )
            }
            CertFailure::CouplingMismatch { entry, got, expected } => {
                write!(f, "call coupling at entry var {entry}: count {got}, callers sum {expected}")
            }
            CertFailure::Overflow => write!(f, "exact arithmetic overflowed i128"),
        }
    }
}

impl std::error::Error for CertFailure {}

/// How the claimed bound must relate to the exactly witnessed objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClaimKind {
    /// `Exact` quality: the objective replay must equal the claim.
    Equal,
    /// `Relaxed` WCET: the claim is an outer bound from above (`claim ≥`).
    CoversFromAbove,
    /// `Relaxed` BCET: the claim is an outer bound from below (`claim ≤`).
    CoversFromBelow,
}

/// A witness that survived checks (a) and (b).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertifiedWitness {
    /// The rounded integer execution counts.
    pub counts: Vec<i64>,
    /// The exactly recomputed objective value.
    pub objective: i128,
}

/// Exact sum `Σ terms[i].1 · counts[terms[i].0]` as a dyadic rational.
fn exact_dot(terms: &[(usize, f64)], counts: &[i64], row: usize) -> Result<Rat, CertFailure> {
    let mut sum = Rat::ZERO;
    for &(var, coeff) in terms {
        let c = Rat::from_f64(coeff).ok_or(CertFailure::NonFiniteCoefficient { row })?;
        let count = *counts
            .get(var)
            .ok_or(CertFailure::ArityMismatch { expected: var + 1, got: counts.len() })?;
        let term = c.mul_int(count as i128).ok_or(CertFailure::Overflow)?;
        sum = sum.add_checked(term).ok_or(CertFailure::Overflow)?;
    }
    Ok(sum)
}

/// Certifies checks (a) and (b): rounds the f64 witness `x`, verifies every
/// constraint of `problem` exactly, recomputes the objective exactly, and
/// checks it against the `claimed` bound per `kind`.
///
/// Variables are implicitly non-negative in [`Problem`]; the rounding layer
/// already rejects negative counts, so non-negativity holds by construction.
pub fn certify_witness(
    problem: &Problem,
    x: &[f64],
    claimed: i64,
    kind: ClaimKind,
) -> Result<CertifiedWitness, CertFailure> {
    let counts = round_witness(x).map_err(CertFailure::BadWitness)?;
    if counts.len() != problem.num_vars() {
        return Err(CertFailure::ArityMismatch { expected: problem.num_vars(), got: counts.len() });
    }

    // (a) every structural + functionality row, exactly.
    for (row, con) in problem.constraints.iter().enumerate() {
        let indexed: Vec<(usize, f64)> = con.terms.iter().map(|&(v, c)| (v.0, c)).collect();
        let lhs = exact_dot(&indexed, &counts, row)?;
        let rhs = Rat::from_f64(con.rhs).ok_or(CertFailure::NonFiniteCoefficient { row })?;
        let ord = lhs.cmp_exact(rhs).ok_or(CertFailure::Overflow)?;
        let holds = match con.relation {
            Relation::Le => ord != std::cmp::Ordering::Greater,
            Relation::Ge => ord != std::cmp::Ordering::Less,
            Relation::Eq => ord == std::cmp::Ordering::Equal,
        };
        if !holds {
            return Err(CertFailure::ConstraintViolated {
                row,
                lhs: lhs.render(),
                relation: con.relation,
                rhs: rhs.render(),
            });
        }
    }

    // (b) objective replay, exactly.
    let obj_terms: Vec<(usize, f64)> =
        problem.objective.iter().enumerate().map(|(v, &c)| (v, c)).collect();
    let objective = exact_dot(&obj_terms, &counts, usize::MAX)?;
    let claim = Rat::from_int(claimed as i128);
    let ord = objective.cmp_exact(claim).ok_or(CertFailure::Overflow)?;
    let covered = match kind {
        ClaimKind::Equal => ord == std::cmp::Ordering::Equal,
        ClaimKind::CoversFromAbove => ord != std::cmp::Ordering::Greater,
        ClaimKind::CoversFromBelow => ord != std::cmp::Ordering::Less,
    };
    if !covered {
        match kind {
            ClaimKind::Equal => {
                return Err(CertFailure::ObjectiveMismatch {
                    computed: objective.render(),
                    claimed,
                })
            }
            _ => {
                let witnessed = objective.as_int().ok_or(CertFailure::Overflow)?;
                return Err(CertFailure::BoundViolatesWitness {
                    bound: claimed,
                    witnessed: witnessed as i64,
                });
            }
        }
    }
    let objective = objective
        .as_int()
        .ok_or(CertFailure::ObjectiveMismatch { computed: objective.render(), claimed })?;
    Ok(CertifiedWitness { counts, objective })
}

/// Exact chord certificate for parametric region reuse (DESIGN.md §16).
///
/// `formula` is the line `value(p) = constant + slope·p` traced by an
/// optimal witness solved at one end of a candidate region; `(p, value)` is
/// the *certified* optimum at the other end. With parameter-free
/// constraints the optimal value function is convex in `p` and the witness
/// line is a global minorant, so exact equality of line and optimum at both
/// endpoints proves the line *is* the optimum everywhere between them.
///
/// The arithmetic is exact dyadic-rational ([`Rat`]); overflow rejects the
/// certificate (returns `false`) rather than guessing — the caller then
/// falls back to a concrete solve, so a refused certificate costs time,
/// never correctness.
pub fn certify_chord(formula: ipet_lp::BoundFormula, p: u64, value: i128) -> bool {
    let Some(term) = Rat::from_int(formula.slope).mul_int(p as i128) else { return false };
    let Some(lhs) = term.add_checked(Rat::from_int(formula.constant)) else { return false };
    lhs.cmp_exact(Rat::from_int(value)) == Some(std::cmp::Ordering::Equal)
}

/// One basic block's flow neighborhood, in problem-variable indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowNode {
    /// Variable index of the block count `x_i`.
    pub block: usize,
    /// Variable indices of the edges entering the block.
    pub in_edges: Vec<usize>,
    /// Variable indices of the edges leaving the block.
    pub out_edges: Vec<usize>,
}

/// CFG flow structure for check (c), built directly from the CFG topology
/// (not from the constraint matrix the solver saw).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FlowSpec {
    /// Variable index of the program entry edge (`d1` of the root instance);
    /// it must execute exactly once.
    pub entry_edge: usize,
    /// Every block of every instance with its in/out edge variables.
    pub nodes: Vec<FlowNode>,
    /// Interprocedural couplings: each callee entry-edge variable must equal
    /// the sum of its caller f-edge variables.
    pub couplings: Vec<(usize, Vec<usize>)>,
}

impl FlowSpec {
    /// Check (c): replays flow conservation over the rounded witness.
    pub fn check(&self, counts: &[i64]) -> Result<(), CertFailure> {
        let get = |var: usize| -> Result<i64, CertFailure> {
            counts
                .get(var)
                .copied()
                .ok_or(CertFailure::ArityMismatch { expected: var + 1, got: counts.len() })
        };
        let entry = get(self.entry_edge)?;
        if entry != 1 {
            return Err(CertFailure::FlowEntryMismatch { got: entry });
        }
        for node in &self.nodes {
            let count = get(node.block)?;
            let mut inflow: i128 = 0;
            for &e in &node.in_edges {
                inflow += get(e)? as i128;
            }
            let mut outflow: i128 = 0;
            for &e in &node.out_edges {
                outflow += get(e)? as i128;
            }
            if inflow != count as i128 || outflow != count as i128 {
                return Err(CertFailure::FlowImbalance {
                    block: node.block,
                    count,
                    inflow,
                    outflow,
                });
            }
        }
        for &(entry_var, ref callers) in &self.couplings {
            let got = get(entry_var)?;
            let mut expected: i128 = 0;
            for &c in callers {
                expected += get(c)? as i128;
            }
            if got as i128 != expected {
                return Err(CertFailure::CouplingMismatch { entry: entry_var, got, expected });
            }
        }
        Ok(())
    }
}

/// The audit verdict for one direction (WCET or BCET) of one constraint set.
#[derive(Debug, Clone, PartialEq)]
pub enum CertVerdict {
    /// `Exact` solve fully certified: feasibility, objective equality and
    /// flow replay all hold for the claimed value.
    Certified {
        /// The certified bound in cycles.
        value: u64,
    },
    /// `Relaxed` solve: the outer bound covers the certified incumbent
    /// witness (`witnessed`), or no incumbent existed to certify.
    CertifiedRelaxed {
        /// The claimed safe outer bound in cycles.
        bound: u64,
        /// The certified incumbent's objective, when one exists.
        witnessed: Option<u64>,
    },
    /// The set is infeasible — there is no bound and no witness to certify.
    Infeasible,
    /// The set was skipped or quarantined and is covered by the common-
    /// constraint relaxation (`Partial` quality): no certificate exists,
    /// which the audit reports but does not count as a rejection.
    Covered,
    /// Certification failed: the reported bound cannot be trusted.
    Rejected(CertFailure),
}

impl CertVerdict {
    /// True when this verdict invalidates the run.
    pub fn is_rejection(&self) -> bool {
        matches!(self, CertVerdict::Rejected(_))
    }

    /// Short human-readable form for reports.
    pub fn describe(&self) -> String {
        match self {
            CertVerdict::Certified { value } => format!("certified (= {value})"),
            CertVerdict::CertifiedRelaxed { bound, witnessed: Some(w) } => {
                format!("certified relaxed (bound {bound} covers witness {w})")
            }
            CertVerdict::CertifiedRelaxed { bound, witnessed: None } => {
                format!("certified relaxed (bound {bound}, no incumbent)")
            }
            CertVerdict::Infeasible => "infeasible (nothing to certify)".to_string(),
            CertVerdict::Covered => "covered by relaxation (no certificate)".to_string(),
            CertVerdict::Rejected(failure) => format!("REJECTED: {failure}"),
        }
    }
}

/// Certificates for both directions of one constraint set.
#[derive(Debug, Clone, PartialEq)]
pub struct SetCertificate {
    /// Constraint-set index in canonical order.
    pub set: usize,
    /// Verdict for the Maximize (WCET) solve.
    pub wcet: CertVerdict,
    /// Verdict for the Minimize (BCET) solve.
    pub bcet: CertVerdict,
}

/// The per-set certificate report for one analysis.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AuditReport {
    /// One certificate per constraint set, in canonical set order.
    pub sets: Vec<SetCertificate>,
}

impl AuditReport {
    /// Number of individual verdicts that certified (exact or relaxed).
    pub fn certified(&self) -> usize {
        self.verdicts()
            .filter(|v| {
                matches!(v, CertVerdict::Certified { .. } | CertVerdict::CertifiedRelaxed { .. })
            })
            .count()
    }

    /// Number of individual verdicts that were rejected.
    pub fn rejected(&self) -> usize {
        self.verdicts().filter(|v| v.is_rejection()).count()
    }

    /// True when no verdict was rejected — the run's bounds are certified.
    pub fn all_certified(&self) -> bool {
        self.rejected() == 0
    }

    fn verdicts(&self) -> impl Iterator<Item = &CertVerdict> {
        self.sets.iter().flat_map(|s| [&s.wcet, &s.bcet])
    }

    /// Renders the per-set certificate report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for cert in &self.sets {
            out.push_str(&format!(
                "  set {}: wcet {}; bcet {}\n",
                cert.set,
                cert.wcet.describe(),
                cert.bcet.describe()
            ));
        }
        out.push_str(&format!(
            "audit: {} verdict(s) certified, {} rejected\n",
            self.certified(),
            self.rejected()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipet_lp::{ProblemBuilder, Sense};

    /// max 3x + 2y st x + y <= 4, x <= 2 — optimum x=2, y=2, value 10.
    fn toy() -> Problem {
        let mut b = ProblemBuilder::new(Sense::Maximize);
        let x = b.add_var("x", true);
        let y = b.add_var("y", true);
        b.objective(x, 3.0);
        b.objective(y, 2.0);
        b.constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
        b.constraint(vec![(x, 1.0)], Relation::Le, 2.0);
        b.build()
    }

    #[test]
    fn valid_exact_witness_certifies() {
        let cert = certify_witness(&toy(), &[2.0, 2.0], 10, ClaimKind::Equal).unwrap();
        assert_eq!(cert.counts, vec![2, 2]);
        assert_eq!(cert.objective, 10);
    }

    #[test]
    fn near_integral_witness_rounds_then_certifies() {
        let x = [2.0 - 1e-9, 2.0 + 1e-9];
        let cert = certify_witness(&toy(), &x, 10, ClaimKind::Equal).unwrap();
        assert_eq!(cert.counts, vec![2, 2]);
    }

    #[test]
    fn infeasible_witness_is_rejected() {
        // x = 3 violates row 1 (x <= 2).
        let err = certify_witness(&toy(), &[3.0, 1.0], 11, ClaimKind::Equal).unwrap_err();
        assert!(matches!(err, CertFailure::ConstraintViolated { row: 1, .. }), "{err}");
    }

    #[test]
    fn objective_mismatch_is_rejected() {
        let err = certify_witness(&toy(), &[2.0, 2.0], 11, ClaimKind::Equal).unwrap_err();
        assert!(matches!(err, CertFailure::ObjectiveMismatch { claimed: 11, .. }), "{err}");
    }

    #[test]
    fn relaxed_bound_must_cover_witness() {
        // Outer bound 12 covers witnessed 10.
        assert!(certify_witness(&toy(), &[2.0, 2.0], 12, ClaimKind::CoversFromAbove).is_ok());
        // Outer bound 9 does not.
        let err = certify_witness(&toy(), &[2.0, 2.0], 9, ClaimKind::CoversFromAbove).unwrap_err();
        assert_eq!(err, CertFailure::BoundViolatesWitness { bound: 9, witnessed: 10 });
        // Minimize direction: a lower bound must sit below the witness.
        assert!(certify_witness(&toy(), &[2.0, 2.0], 9, ClaimKind::CoversFromBelow).is_ok());
        let err = certify_witness(&toy(), &[2.0, 2.0], 11, ClaimKind::CoversFromBelow).unwrap_err();
        assert_eq!(err, CertFailure::BoundViolatesWitness { bound: 11, witnessed: 10 });
    }

    #[test]
    fn fractional_witness_is_rejected() {
        let err = certify_witness(&toy(), &[1.5, 2.0], 8, ClaimKind::Equal).unwrap_err();
        assert!(matches!(err, CertFailure::BadWitness(_)), "{err}");
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let err = certify_witness(&toy(), &[2.0], 6, ClaimKind::Equal).unwrap_err();
        assert_eq!(err, CertFailure::ArityMismatch { expected: 2, got: 1 });
    }

    #[test]
    fn flow_spec_replays_a_diamond() {
        // Vars: 0..4 blocks? Use a tiny diamond: entry edge d0 (var 4),
        // blocks b0 (var 0) -> {e1 (5), e2 (6)} -> b1 (1), b2 (2) -> e3
        // (7), e4 (8) -> b3 (3).
        let spec = FlowSpec {
            entry_edge: 4,
            nodes: vec![
                FlowNode { block: 0, in_edges: vec![4], out_edges: vec![5, 6] },
                FlowNode { block: 1, in_edges: vec![5], out_edges: vec![7] },
                FlowNode { block: 2, in_edges: vec![6], out_edges: vec![8] },
                FlowNode { block: 3, in_edges: vec![7, 8], out_edges: vec![9] },
            ],
            couplings: vec![],
        };
        // Take the left branch once.
        let good = [1, 1, 0, 1, 1, 1, 0, 1, 0, 1];
        spec.check(&good).unwrap();
        // Entry edge executed twice: rejected.
        let twice = [2, 2, 0, 2, 2, 2, 0, 2, 0, 2];
        assert_eq!(spec.check(&twice), Err(CertFailure::FlowEntryMismatch { got: 2 }));
        // Block count disagrees with flow: rejected.
        let imbalanced = [1, 2, 0, 1, 1, 1, 0, 1, 0, 1];
        assert!(matches!(
            spec.check(&imbalanced),
            Err(CertFailure::FlowImbalance { block: 1, .. })
        ));
    }

    #[test]
    fn coupling_mismatch_is_rejected() {
        let spec = FlowSpec { entry_edge: 0, nodes: vec![], couplings: vec![(1, vec![2, 3])] };
        spec.check(&[1, 5, 2, 3]).unwrap();
        assert_eq!(
            spec.check(&[1, 4, 2, 3]),
            Err(CertFailure::CouplingMismatch { entry: 1, got: 4, expected: 5 })
        );
    }

    #[test]
    fn chord_certificate_is_exact() {
        use ipet_lp::BoundFormula;
        let f = BoundFormula { constant: 316, slope: 24 };
        assert!(certify_chord(f, 0, 316));
        assert!(certify_chord(f, 32, 316 + 24 * 32));
        assert!(!certify_chord(f, 32, 316 + 24 * 32 + 1));
        // Overflow refuses the certificate instead of wrapping.
        let huge = BoundFormula { constant: 0, slope: i128::MAX };
        assert!(!certify_chord(huge, 2, 0));
    }

    #[test]
    fn report_counts_rejections() {
        let report = AuditReport {
            sets: vec![
                SetCertificate {
                    set: 0,
                    wcet: CertVerdict::Certified { value: 10 },
                    bcet: CertVerdict::Certified { value: 4 },
                },
                SetCertificate {
                    set: 1,
                    wcet: CertVerdict::Rejected(CertFailure::Overflow),
                    bcet: CertVerdict::Covered,
                },
            ],
        };
        assert_eq!(report.certified(), 2);
        assert_eq!(report.rejected(), 1);
        assert!(!report.all_certified());
        assert!(report.render().contains("REJECTED"));
    }
}
