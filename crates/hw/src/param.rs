//! Exact integer linear forms over named machine parameters.
//!
//! The paper evaluates one `(program, cache config, penalty)` point per
//! solve. [`ParamExpr`] generalizes the concrete `u64` cost pipeline into a
//! linear form `c0 + Σ k_j · p_j` over named parameters (the i-cache miss
//! penalty, the d-cache miss penalty, per-loop bound symbols), so a config
//! sweep can evaluate a closed-form bound formula instead of re-running the
//! ILP batch (Ballabriga et al.; DESIGN.md §16).
//!
//! All arithmetic is exact `i128`; evaluation is checked and refuses to
//! guess on overflow or on a parameter missing from the evaluation point.

use std::collections::BTreeMap;
use std::fmt;

/// Canonical parameter name of the i-cache line-fill penalty
/// ([`crate::Machine::miss_penalty`]).
pub const P_MISS: &str = "miss_penalty";

/// Canonical parameter name of the d-cache line-fill penalty
/// ([`crate::Machine::dmiss_penalty`]).
pub const P_DMISS: &str = "dmiss_penalty";

/// A point in parameter space: each named parameter's concrete value.
pub type ParamPoint = BTreeMap<String, i128>;

/// An exact integer linear form `constant + Σ coeff·param` over named
/// parameters. The zero polynomial is `ParamExpr::default()`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct ParamExpr {
    constant: i128,
    /// Non-zero coefficients only, keyed by parameter name (canonical order).
    terms: BTreeMap<String, i128>,
}

impl ParamExpr {
    /// The constant form `c`.
    pub fn constant(c: i128) -> ParamExpr {
        ParamExpr { constant: c, terms: BTreeMap::new() }
    }

    /// The single-term form `coeff · name`.
    pub fn term(name: &str, coeff: i128) -> ParamExpr {
        let mut terms = BTreeMap::new();
        if coeff != 0 {
            terms.insert(name.to_string(), coeff);
        }
        ParamExpr { constant: 0, terms }
    }

    /// The constant part `c0` (the form's value when every parameter is 0).
    pub fn constant_part(&self) -> i128 {
        self.constant
    }

    /// The coefficient of `name` (0 when absent).
    pub fn coeff(&self, name: &str) -> i128 {
        self.terms.get(name).copied().unwrap_or(0)
    }

    /// True when the form has no parameter terms.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// The parameter names with non-zero coefficients, in canonical order.
    pub fn params(&self) -> impl Iterator<Item = &str> {
        self.terms.keys().map(|s| s.as_str())
    }

    /// Iterates `(name, coeff)` pairs in canonical order.
    pub fn iter_terms(&self) -> impl Iterator<Item = (&str, i128)> {
        self.terms.iter().map(|(n, &c)| (n.as_str(), c))
    }

    /// `self + other`, exactly.
    pub fn add(&self, other: &ParamExpr) -> ParamExpr {
        let mut out = self.clone();
        out.constant += other.constant;
        for (name, &coeff) in &other.terms {
            let entry = out.terms.entry(name.clone()).or_insert(0);
            *entry += coeff;
            if *entry == 0 {
                out.terms.remove(name);
            }
        }
        out
    }

    /// `self + k`, exactly.
    pub fn add_const(&self, k: i128) -> ParamExpr {
        let mut out = self.clone();
        out.constant += k;
        out
    }

    /// `k · self`, exactly.
    pub fn scale(&self, k: i128) -> ParamExpr {
        if k == 0 {
            return ParamExpr::default();
        }
        let mut out = self.clone();
        out.constant *= k;
        for coeff in out.terms.values_mut() {
            *coeff *= k;
        }
        out
    }

    /// Evaluates the form at `point`, exactly. Returns `None` when a
    /// parameter with a non-zero coefficient is missing from `point` or the
    /// exact arithmetic overflows `i128` — refuse, never guess.
    pub fn eval(&self, point: &ParamPoint) -> Option<i128> {
        let mut acc = self.constant;
        for (name, &coeff) in &self.terms {
            let value = *point.get(name)?;
            acc = acc.checked_add(coeff.checked_mul(value)?)?;
        }
        Some(acc)
    }

    /// Evaluates at `point` and converts to a non-negative cycle count.
    pub fn eval_u64(&self, point: &ParamPoint) -> Option<u64> {
        u64::try_from(self.eval(point)?).ok()
    }

    /// Specializes the form to the single varying parameter `varying`:
    /// every other parameter is fixed at its value in `fixed`, yielding the
    /// one-variable line `(constant, slope)` with
    /// `value(p) = constant + slope·p`. Returns `None` when a fixed
    /// parameter is missing from `fixed` or the arithmetic overflows.
    pub fn specialize(&self, varying: &str, fixed: &ParamPoint) -> Option<(i128, i128)> {
        let mut constant = self.constant;
        let mut slope = 0i128;
        for (name, &coeff) in &self.terms {
            if name == varying {
                slope = slope.checked_add(coeff)?;
            } else {
                let value = *fixed.get(name)?;
                constant = constant.checked_add(coeff.checked_mul(value)?)?;
            }
        }
        Some((constant, slope))
    }
}

impl fmt::Display for ParamExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.constant)?;
        for (name, coeff) in &self.terms {
            if *coeff < 0 {
                write!(f, " - {}*{}", -coeff, name)?;
            } else {
                write!(f, " + {coeff}*{name}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(pairs: &[(&str, i128)]) -> ParamPoint {
        pairs.iter().map(|&(n, v)| (n.to_string(), v)).collect()
    }

    #[test]
    fn constant_form_evaluates_anywhere() {
        let e = ParamExpr::constant(42);
        assert!(e.is_constant());
        assert_eq!(e.eval(&ParamPoint::new()), Some(42));
        assert_eq!(e.eval_u64(&ParamPoint::new()), Some(42));
    }

    #[test]
    fn linear_form_evaluates_exactly() {
        let e = ParamExpr::constant(10).add(&ParamExpr::term(P_MISS, 3));
        assert_eq!(e.coeff(P_MISS), 3);
        assert_eq!(e.constant_part(), 10);
        assert_eq!(e.eval(&point(&[(P_MISS, 8)])), Some(34));
        assert_eq!(e.eval(&point(&[(P_MISS, 0)])), Some(10));
    }

    #[test]
    fn missing_parameter_refuses_to_evaluate() {
        let e = ParamExpr::term(P_MISS, 1);
        assert_eq!(e.eval(&ParamPoint::new()), None);
        // A zero-coefficient parameter is not required at the point.
        let c = ParamExpr::term(P_MISS, 0);
        assert!(c.is_constant());
        assert_eq!(c.eval(&ParamPoint::new()), Some(0));
    }

    #[test]
    fn add_cancels_to_zero_coefficients() {
        let e = ParamExpr::term(P_MISS, 3).add(&ParamExpr::term(P_MISS, -3));
        assert!(e.is_constant());
        assert_eq!(e, ParamExpr::default());
    }

    #[test]
    fn scale_distributes() {
        let e = ParamExpr::constant(2).add(&ParamExpr::term(P_MISS, 5)).scale(3);
        assert_eq!(e.constant_part(), 6);
        assert_eq!(e.coeff(P_MISS), 15);
        assert_eq!(ParamExpr::term(P_MISS, 5).scale(0), ParamExpr::default());
    }

    #[test]
    fn eval_overflow_is_refused() {
        let e = ParamExpr::term(P_MISS, i128::MAX);
        assert_eq!(e.eval(&point(&[(P_MISS, 2)])), None);
    }

    #[test]
    fn negative_value_is_not_a_cycle_count() {
        let e = ParamExpr::term(P_MISS, -1);
        assert_eq!(e.eval_u64(&point(&[(P_MISS, 1)])), None);
    }

    #[test]
    fn specialize_splits_constant_and_slope() {
        let e = ParamExpr::constant(7)
            .add(&ParamExpr::term(P_MISS, 4))
            .add(&ParamExpr::term(P_DMISS, 2));
        let (c, s) = e.specialize(P_MISS, &point(&[(P_DMISS, 10)])).unwrap();
        assert_eq!((c, s), (27, 4));
        // Missing fixed parameter refuses.
        assert_eq!(e.specialize(P_MISS, &ParamPoint::new()), None);
    }

    #[test]
    fn display_is_canonical() {
        let e = ParamExpr::constant(5)
            .add(&ParamExpr::term(P_MISS, 2))
            .add(&ParamExpr::term("bound.L1", -1));
        assert_eq!(e.to_string(), "5 - 1*bound.L1 + 2*miss_penalty");
    }
}
