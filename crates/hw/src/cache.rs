//! Instruction-cache geometry shared between the static cost model and the
//! timing simulator in `ipet-sim`.

/// Geometry of a direct-mapped instruction cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeom {
    /// Total capacity in bytes (the i960KB has 512).
    pub size_bytes: u32,
    /// Line size in bytes (power of two; 16 on the i960KB — four
    /// instructions per line).
    pub line_bytes: u32,
}

impl CacheGeom {
    /// Creates a geometry, checking the i960-style invariants.
    ///
    /// # Panics
    ///
    /// Panics unless both sizes are non-zero powers of two with
    /// `line_bytes <= size_bytes`.
    pub fn new(size_bytes: u32, line_bytes: u32) -> CacheGeom {
        assert!(size_bytes.is_power_of_two(), "cache size must be a power of two");
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(line_bytes <= size_bytes, "line larger than cache");
        CacheGeom { size_bytes, line_bytes }
    }

    /// Number of cache lines.
    pub fn num_lines(self) -> u32 {
        self.size_bytes / self.line_bytes
    }

    /// The memory line index containing byte address `addr`.
    pub fn line_of(self, addr: u32) -> u32 {
        addr / self.line_bytes
    }

    /// The direct-mapped cache set a memory line maps to.
    pub fn set_of_line(self, line: u32) -> u32 {
        line % self.num_lines()
    }

    /// Number of distinct memory lines overlapped by the byte range
    /// `[start, end)`. Returns 0 for an empty range.
    pub fn lines_in_range(self, start: u32, end: u32) -> u32 {
        if end <= start {
            return 0;
        }
        self.line_of(end - 1) - self.line_of(start) + 1
    }

    /// True if the byte range `[start, end)` fits in the cache without any
    /// two of its lines mapping to the same set — i.e. once loaded, the
    /// range is conflict-free (used to justify warm-iteration costing).
    pub fn range_is_conflict_free(self, start: u32, end: u32) -> bool {
        self.lines_in_range(start, end) <= self.num_lines()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i960kb_geometry() {
        let g = CacheGeom::new(512, 16);
        assert_eq!(g.num_lines(), 32);
        assert_eq!(g.line_of(0), 0);
        assert_eq!(g.line_of(15), 0);
        assert_eq!(g.line_of(16), 1);
        assert_eq!(g.set_of_line(0), 0);
        assert_eq!(g.set_of_line(32), 0);
        assert_eq!(g.set_of_line(33), 1);
    }

    #[test]
    fn lines_in_range_counts_partial_lines() {
        let g = CacheGeom::new(512, 16);
        assert_eq!(g.lines_in_range(0, 0), 0);
        assert_eq!(g.lines_in_range(0, 1), 1);
        assert_eq!(g.lines_in_range(0, 16), 1);
        assert_eq!(g.lines_in_range(0, 17), 2);
        assert_eq!(g.lines_in_range(12, 20), 2);
        assert_eq!(g.lines_in_range(16, 32), 1);
    }

    #[test]
    fn conflict_freedom() {
        let g = CacheGeom::new(512, 16);
        assert!(g.range_is_conflict_free(0, 512));
        assert!(!g.range_is_conflict_free(0, 513));
        // Contiguous ranges of <= num_lines lines never self-conflict in a
        // direct-mapped cache.
        assert!(g.range_is_conflict_free(100, 100 + 400));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        CacheGeom::new(500, 16);
    }

    #[test]
    #[should_panic(expected = "line larger than cache")]
    fn rejects_line_larger_than_cache() {
        CacheGeom::new(16, 32);
    }
}
