//! # ipet-hw
//!
//! The micro-architectural model of the reproduction's i960KB-flavoured
//! target: a 4-stage pipelined integer core with a 512-byte direct-mapped
//! instruction cache and uncached data memory.
//!
//! Exactly as in the paper (§IV), the model produces a *constant* cost
//! bound per basic block:
//!
//! * **best case** assumes every instruction fetch hits the i-cache and
//!   conditional branches fall through;
//! * **worst case** assumes every cache line the block touches must be
//!   filled from memory and conditional branches are taken (pipeline
//!   refill).
//!
//! Load-use interlocks between adjacent instructions within a block are
//! charged in both bounds ("for each assembly instruction ... we analyze
//! its adjacent instructions within the basic block").
//!
//! The paper notes that all-miss worst-case costing is very pessimistic for
//! loops and suggests splitting the first loop iteration into its own
//! virtual block; [`BlockCost::worst_warm`] provides the all-hit worst cost
//! that the splitting transformation in `ipet-core` uses for non-first
//! iterations.
//!
//! ## Example
//!
//! ```
//! use ipet_arch::{AsmBuilder, FuncId, Program, Reg, AluOp};
//! use ipet_cfg::Cfg;
//! use ipet_hw::{block_cost, Machine};
//!
//! let mut b = AsmBuilder::new("f");
//! b.alu(AluOp::Mul, Reg::RV, Reg::A0, 3);
//! b.ret();
//! let program = Program::new(vec![b.finish().unwrap()], vec![], FuncId(0)).unwrap();
//! let cfg = Cfg::build(FuncId(0), program.entry_function());
//!
//! let machine = Machine::i960kb();
//! let cost = block_cost(&machine, program.entry_function(), &cfg.blocks[0]);
//! assert!(cost.best <= cost.worst_warm);
//! assert!(cost.worst_warm < cost.worst_cold); // the cold case pays a line fill
//! ```

mod cache;
mod cost;
mod machine;
mod param;

pub use cache::CacheGeom;
pub use cost::{block_cost, block_cost_param, instr_cycles, BlockCost};
pub use machine::Machine;
pub use param::{ParamExpr, ParamPoint, P_DMISS, P_MISS};
