//! Machine description: timing table and penalties.

use crate::cache::CacheGeom;
use ipet_arch::InstrClass;

/// Timing description of the target processor.
///
/// The default values are i960KB-flavoured: single-cycle ALU, multi-cycle
/// multiply/divide, uncached multi-cycle data memory, an 8-cycle line fill
/// for the 512-byte direct-mapped i-cache, and a 2-cycle refill bubble on
/// taken branches in the 4-stage pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Machine {
    /// Instruction-cache geometry.
    pub icache: CacheGeom,
    /// Cycles to fill one i-cache line from memory.
    pub miss_penalty: u64,
    /// Extra cycles when a conditional branch is taken (pipeline refill).
    pub branch_taken_penalty: u64,
    /// Stall cycles when an instruction consumes the destination of the
    /// immediately preceding load.
    pub load_use_stall: u64,
    /// Base cycles for simple integer ops and moves.
    pub int_simple_cycles: u64,
    /// Base cycles for integer multiply.
    pub int_mul_cycles: u64,
    /// Base cycles for integer divide/remainder.
    pub int_div_cycles: u64,
    /// Base cycles for a data load (no data cache on the i960KB).
    pub load_cycles: u64,
    /// Base cycles for a data store.
    pub store_cycles: u64,
    /// Base cycles for a conditional branch (fall-through case).
    pub branch_cycles: u64,
    /// Base cycles for an unconditional jump (redirect included).
    pub jump_cycles: u64,
    /// Base cycles for `call` (register save, as in the i960's frame cache).
    pub call_cycles: u64,
    /// Base cycles for `ret`.
    pub ret_cycles: u64,
    /// Base cycles for `nop`.
    pub nop_cycles: u64,
    /// Optional data cache (the i960KB has none; the paper lists better
    /// cache modelling as future work). When present, `load_cycles` is the
    /// hit cost and misses add [`Machine::dmiss_penalty`].
    pub dcache: Option<CacheGeom>,
    /// Cycles to fill one data-cache line on a load miss.
    pub dmiss_penalty: u64,
}

impl Machine {
    /// The i960KB-flavoured reference machine used by all experiments.
    pub fn i960kb() -> Machine {
        Machine {
            icache: CacheGeom::new(512, 16),
            miss_penalty: 8,
            branch_taken_penalty: 2,
            load_use_stall: 1,
            int_simple_cycles: 1,
            int_mul_cycles: 5,
            int_div_cycles: 20,
            load_cycles: 4,
            store_cycles: 3,
            branch_cycles: 2,
            jump_cycles: 3,
            call_cycles: 9,
            ret_cycles: 9,
            nop_cycles: 1,
            dcache: None,
            dmiss_penalty: 10,
        }
    }

    /// A hypothetical i960KB fitted with a small write-through data cache
    /// — the "improving the hardware model" future work of §VII, used by
    /// the `dcache` ablation experiment. Loads hit in 2 cycles; misses
    /// fill a 16-byte line from 10-cycle memory.
    pub fn i960kb_with_dcache() -> Machine {
        Machine {
            dcache: Some(CacheGeom::new(256, 16)),
            dmiss_penalty: 10,
            load_cycles: 2,
            ..Machine::i960kb()
        }
    }

    /// The AT&T DSP3210 port mentioned in the paper's §VII ("in
    /// collaboration with AT&T, we have completed a port for the AT&T
    /// DSP3210 processor ... intended for use in the VCOS operating
    /// system"). DSP-flavoured timings: single-cycle multiply-accumulate
    /// pipelines make `mul` cheap, while the part runs from a small
    /// 1-KiB on-chip instruction RAM modelled as a cache with a slow
    /// external fill.
    pub fn dsp3210() -> Machine {
        Machine {
            icache: CacheGeom::new(1024, 32),
            miss_penalty: 12,
            branch_taken_penalty: 3,
            load_use_stall: 1,
            int_simple_cycles: 1,
            int_mul_cycles: 1,
            int_div_cycles: 24,
            load_cycles: 2,
            store_cycles: 2,
            branch_cycles: 2,
            jump_cycles: 2,
            call_cycles: 5,
            ret_cycles: 5,
            nop_cycles: 1,
            dcache: None,
            dmiss_penalty: 14,
        }
    }

    /// Looks up a machine by name (`i960kb`, `dsp3210`).
    pub fn by_name(name: &str) -> Option<Machine> {
        match name {
            "i960kb" => Some(Machine::i960kb()),
            "i960kb+dcache" => Some(Machine::i960kb_with_dcache()),
            "dsp3210" => Some(Machine::dsp3210()),
            _ => None,
        }
    }

    /// This machine's point in parameter space: the concrete values of the
    /// symbolic penalties used by [`crate::block_cost_param`]. Evaluating a
    /// parametric cost at this point reproduces the concrete cost exactly.
    pub fn param_point(&self) -> crate::ParamPoint {
        let mut point = crate::ParamPoint::new();
        point.insert(crate::P_MISS.to_string(), self.miss_penalty as i128);
        point.insert(crate::P_DMISS.to_string(), self.dmiss_penalty as i128);
        point
    }

    /// Base execution cycles for an instruction class (no cache, no
    /// hazards, branch not taken).
    pub fn class_cycles(&self, class: InstrClass) -> u64 {
        match class {
            InstrClass::IntSimple => self.int_simple_cycles,
            InstrClass::IntMul => self.int_mul_cycles,
            InstrClass::IntDiv => self.int_div_cycles,
            InstrClass::Load => self.load_cycles,
            InstrClass::Store => self.store_cycles,
            InstrClass::Branch => self.branch_cycles,
            InstrClass::Jump => self.jump_cycles,
            InstrClass::Call => self.call_cycles,
            InstrClass::Ret => self.ret_cycles,
            InstrClass::Nop => self.nop_cycles,
        }
    }
}

impl Default for Machine {
    fn default() -> Machine {
        Machine::i960kb()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_i960kb() {
        assert_eq!(Machine::default(), Machine::i960kb());
    }

    #[test]
    fn icache_is_512_bytes_direct_mapped() {
        let m = Machine::i960kb();
        assert_eq!(m.icache.size_bytes, 512);
        assert_eq!(m.icache.num_lines(), 32);
    }

    #[test]
    fn dsp3210_differs_meaningfully() {
        let dsp = Machine::dsp3210();
        let i960 = Machine::i960kb();
        assert!(dsp.class_cycles(InstrClass::IntMul) < i960.class_cycles(InstrClass::IntMul));
        assert_eq!(dsp.icache.size_bytes, 1024);
        assert_ne!(dsp, i960);
    }

    #[test]
    fn machines_resolve_by_name() {
        assert_eq!(Machine::by_name("i960kb"), Some(Machine::i960kb()));
        assert_eq!(Machine::by_name("dsp3210"), Some(Machine::dsp3210()));
        assert_eq!(Machine::by_name("pentium"), None);
    }

    #[test]
    fn class_cycle_ordering_is_sensible() {
        let m = Machine::i960kb();
        assert!(m.class_cycles(InstrClass::IntDiv) > m.class_cycles(InstrClass::IntMul));
        assert!(m.class_cycles(InstrClass::IntMul) > m.class_cycles(InstrClass::IntSimple));
        assert!(m.class_cycles(InstrClass::Load) > m.class_cycles(InstrClass::Store));
        assert_eq!(m.class_cycles(InstrClass::Nop), 1);
    }
}
