//! Constant per-basic-block cost bounds (the paper's `c_i`).

use crate::machine::Machine;
use crate::param::{ParamExpr, P_DMISS, P_MISS};
use ipet_arch::{Function, Instr};
use ipet_cfg::BasicBlock;

/// Cost bounds of one basic block.
///
/// The concrete pipeline uses `BlockCost<u64>` (cycles); the parametric
/// pipeline uses `BlockCost<ParamExpr>` (exact linear forms over named
/// penalties), produced by [`block_cost_param`], with the invariant that
/// evaluating the form at the machine's own parameter point reproduces the
/// concrete cost bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct BlockCost<T = u64> {
    /// Best case: all i-cache hits, conditional branch falls through.
    pub best: T,
    /// Worst case with a cold cache: every line the block spans is filled.
    pub worst_cold: T,
    /// Worst case with a warm cache: all hits, but branch still taken.
    /// Used for non-first loop iterations by the cache-splitting ablation.
    pub worst_warm: T,
}

/// Cycles of a single instruction given its predecessor in the block
/// (for the load-use interlock). Cache and branch-direction effects are
/// *not* included — they are accounted at block granularity.
pub fn instr_cycles(machine: &Machine, prev: Option<Instr>, instr: Instr) -> u64 {
    let mut cycles = machine.class_cycles(instr.class());
    if let Some(p) = prev {
        if let Some(def) = p.def_reg() {
            if matches!(p, Instr::Ld { .. }) && instr.use_regs().contains(&def) {
                cycles += machine.load_use_stall;
            }
        }
    }
    cycles
}

/// Computes the cost bounds of `block` within `function`.
///
/// Mirrors the paper's model: per-instruction effective times from the
/// "hardware manual" ([`Machine`]), adjacency effects within the block
/// (load-use interlock), all-hit best case, per-line-miss worst case, and
/// a taken-branch penalty on the worst case when the block ends in a
/// conditional branch.
///
/// The function must already be laid out (its `base_addr` assigned) so the
/// block's byte range maps onto cache lines.
pub fn block_cost(machine: &Machine, function: &Function, block: &BasicBlock) -> BlockCost {
    let (base, branch, loads, lines) = block_cost_parts(machine, function, block);
    let worst = base + branch + loads * machine.dmiss_penalty;
    BlockCost { best: base, worst_cold: worst + lines * machine.miss_penalty, worst_warm: worst }
}

/// The parametric counterpart of [`block_cost`]: the same cost model with
/// the cache penalties left symbolic. The worst cases become exact linear
/// forms over [`P_MISS`] (i-cache line fills) and, when the machine has a
/// data cache, [`P_DMISS`] (per-load d-cache misses); the best case stays
/// constant. Evaluating every field at [`Machine::param_point`] reproduces
/// [`block_cost`] exactly.
pub fn block_cost_param(
    machine: &Machine,
    function: &Function,
    block: &BasicBlock,
) -> BlockCost<ParamExpr> {
    let (base, branch, loads, lines) = block_cost_parts(machine, function, block);
    let worst_warm =
        ParamExpr::constant((base + branch) as i128).add(&ParamExpr::term(P_DMISS, loads as i128));
    let worst_cold = worst_warm.add(&ParamExpr::term(P_MISS, lines as i128));
    BlockCost { best: ParamExpr::constant(base as i128), worst_cold, worst_warm }
}

/// The penalty-independent pieces of the block cost model: base cycles,
/// taken-branch penalty, d-cache-chargeable load count (0 without a data
/// cache), and i-cache lines spanned.
fn block_cost_parts(
    machine: &Machine,
    function: &Function,
    block: &BasicBlock,
) -> (u64, u64, u64, u64) {
    let mut base = 0u64;
    let mut prev: Option<Instr> = None;
    for idx in block.start..block.end {
        let ins = function.instrs[idx];
        base += instr_cycles(machine, prev, ins);
        prev = Some(ins);
    }

    let mut branch = 0u64;
    if let Some(Instr::Br { .. }) = function.instrs.get(block.end - 1).copied() {
        branch = machine.branch_taken_penalty;
    }

    // With a data cache the best case assumes every load hits and the
    // worst case assumes every load misses — the same all-hit/all-miss
    // split the paper applies to the instruction cache.
    let loads = if machine.dcache.is_some() {
        function.instrs[block.start..block.end]
            .iter()
            .filter(|i| matches!(i, Instr::Ld { .. }))
            .count() as u64
    } else {
        0
    };

    let start_addr = function.instr_addr(block.start);
    let end_addr = function.instr_addr(block.end - 1) + ipet_arch::INSTR_BYTES;
    let lines = machine.icache.lines_in_range(start_addr, end_addr) as u64;

    (base, branch, loads, lines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipet_arch::{AluOp, AsmBuilder, Cond, FuncId, Program, Reg};
    use ipet_cfg::Cfg;

    fn program_of(b: AsmBuilder) -> Program {
        Program::new(vec![b.finish().unwrap()], vec![], FuncId(0)).unwrap()
    }

    #[test]
    fn straight_line_costs_add_up() {
        let m = Machine::i960kb();
        let mut b = AsmBuilder::new("f");
        b.ldc(Reg::T0, 1); // 1
        b.alu(AluOp::Mul, Reg::T0, Reg::T0, 3); // 5
        b.ret(); // 9
        let p = program_of(b);
        let cfg = Cfg::build(FuncId(0), &p.functions[0]);
        let c = block_cost(&m, &p.functions[0], &cfg.blocks[0]);
        assert_eq!(c.best, 1 + 5 + 9);
        assert_eq!(c.worst_warm, c.best); // no conditional branch
                                          // 3 instructions at addresses 0..12 -> 1 line of 16 bytes.
        assert_eq!(c.worst_cold, c.best + m.miss_penalty);
    }

    #[test]
    fn load_use_interlock_charged_once() {
        let m = Machine::i960kb();
        let mut b = AsmBuilder::new("f");
        b.ld(Reg::T0, Reg::FP, 0); // 4
        b.alu(AluOp::Add, Reg::T0, Reg::T0, 1); // 1 + 1 stall
        b.alu(AluOp::Add, Reg::T0, Reg::T0, 1); // 1 (no stall: prev not load)
        b.ret(); // 9
        let p = program_of(b);
        let cfg = Cfg::build(FuncId(0), &p.functions[0]);
        let c = block_cost(&m, &p.functions[0], &cfg.blocks[0]);
        assert_eq!(c.best, 4 + 2 + 1 + 9);
    }

    #[test]
    fn independent_use_after_load_has_no_stall() {
        let m = Machine::i960kb();
        let prev = Instr::Ld { dst: Reg::T0, base: Reg::FP, offset: 0 };
        let indep = Instr::Alu {
            op: AluOp::Add,
            dst: Reg::temp(1),
            a: Reg::temp(2),
            b: ipet_arch::Operand::Imm(1),
        };
        assert_eq!(instr_cycles(&m, Some(prev), indep), 1);
        let dep = Instr::Alu {
            op: AluOp::Add,
            dst: Reg::temp(1),
            a: Reg::T0,
            b: ipet_arch::Operand::Imm(1),
        };
        assert_eq!(instr_cycles(&m, Some(prev), dep), 2);
    }

    #[test]
    fn conditional_branch_widens_worst_case() {
        let m = Machine::i960kb();
        let mut b = AsmBuilder::new("f");
        let l = b.fresh_label();
        b.br(Cond::Eq, Reg::A0, 0, l); // block 0: branch
        b.nop();
        b.bind(l);
        b.ret();
        let p = program_of(b);
        let cfg = Cfg::build(FuncId(0), &p.functions[0]);
        let c = block_cost(&m, &p.functions[0], &cfg.blocks[0]);
        assert_eq!(c.best, m.branch_cycles);
        assert_eq!(c.worst_warm, m.branch_cycles + m.branch_taken_penalty);
    }

    #[test]
    fn multi_line_block_charges_each_line() {
        let m = Machine::i960kb();
        let mut b = AsmBuilder::new("f");
        for _ in 0..8 {
            b.nop(); // 8 instrs = 32 bytes = 2 lines
        }
        b.ret(); // 9 instrs = 36 bytes = 3 lines
        let p = program_of(b);
        let cfg = Cfg::build(FuncId(0), &p.functions[0]);
        let c = block_cost(&m, &p.functions[0], &cfg.blocks[0]);
        assert_eq!(c.worst_cold - c.worst_warm, 3 * m.miss_penalty);
    }

    #[test]
    fn block_not_at_function_start_uses_laid_out_addresses() {
        let m = Machine::i960kb();
        // Second function starts at a non-zero base address; a block
        // crossing a line boundary must still count 2 lines.
        let mut f0 = AsmBuilder::new("pad");
        for _ in 0..3 {
            f0.nop();
        }
        f0.ret(); // 4 instrs = 16 bytes
        let mut f1 = AsmBuilder::new("f");
        for _ in 0..4 {
            f1.nop();
        }
        f1.ret();
        let p = Program::new(vec![f0.finish().unwrap(), f1.finish().unwrap()], vec![], FuncId(1))
            .unwrap();
        let cfg = Cfg::build(FuncId(1), &p.functions[1]);
        let c = block_cost(&m, &p.functions[1], &cfg.blocks[0]);
        // f starts at byte 16 (line 1), 5 instrs end at byte 36 -> lines 1,2 = 2 lines.
        assert_eq!(c.worst_cold - c.worst_warm, 2 * m.miss_penalty);
    }

    #[test]
    fn bounds_are_ordered() {
        let m = Machine::i960kb();
        let mut b = AsmBuilder::new("f");
        let l = b.fresh_label();
        b.ld(Reg::T0, Reg::FP, 0);
        b.alu(AluOp::Div, Reg::T0, Reg::T0, 3);
        b.br(Cond::Gt, Reg::T0, 0, l);
        b.bind(l);
        b.ret();
        let p = program_of(b);
        let cfg = Cfg::build(FuncId(0), &p.functions[0]);
        for blk in &cfg.blocks {
            let c = block_cost(&m, &p.functions[0], blk);
            assert!(c.best <= c.worst_warm);
            assert!(c.worst_warm <= c.worst_cold);
        }
    }
}

#[cfg(test)]
mod param_tests {
    use super::*;
    use crate::param::{P_DMISS, P_MISS};
    use ipet_arch::{AluOp, AsmBuilder, Cond, FuncId, Program, Reg};
    use ipet_cfg::Cfg;

    fn looped_program() -> Program {
        let mut b = AsmBuilder::new("f");
        let l = b.fresh_label();
        b.ld(Reg::T0, Reg::FP, 0);
        b.alu(AluOp::Mul, Reg::T0, Reg::T0, 3);
        b.br(Cond::Gt, Reg::T0, 0, l);
        b.nop();
        b.bind(l);
        b.ret();
        Program::new(vec![b.finish().unwrap()], vec![], FuncId(0)).unwrap()
    }

    fn assert_param_matches_concrete(m: &Machine) {
        let p = looped_program();
        let cfg = Cfg::build(FuncId(0), &p.functions[0]);
        let point = m.param_point();
        for blk in &cfg.blocks {
            let concrete = block_cost(m, &p.functions[0], blk);
            let form = block_cost_param(m, &p.functions[0], blk);
            assert_eq!(form.best.eval_u64(&point), Some(concrete.best));
            assert_eq!(form.worst_warm.eval_u64(&point), Some(concrete.worst_warm));
            assert_eq!(form.worst_cold.eval_u64(&point), Some(concrete.worst_cold));
        }
    }

    #[test]
    fn formula_evaluates_to_concrete_cost_on_every_machine() {
        assert_param_matches_concrete(&Machine::i960kb());
        assert_param_matches_concrete(&Machine::i960kb_with_dcache());
        assert_param_matches_concrete(&Machine::dsp3210());
    }

    #[test]
    fn miss_coefficient_counts_cache_lines() {
        let m = Machine::i960kb();
        let p = looped_program();
        let cfg = Cfg::build(FuncId(0), &p.functions[0]);
        for blk in &cfg.blocks {
            let concrete = block_cost(&m, &p.functions[0], blk);
            let form = block_cost_param(&m, &p.functions[0], blk);
            // Slope of worst_cold in the miss penalty = lines spanned.
            let lines = (concrete.worst_cold - concrete.worst_warm) / m.miss_penalty;
            assert_eq!(form.worst_cold.coeff(P_MISS), lines as i128);
            // Without a d-cache no load is chargeable to P_DMISS.
            assert_eq!(form.worst_cold.coeff(P_DMISS), 0);
            assert!(form.best.is_constant());
        }
    }

    #[test]
    fn zero_miss_penalty_formula_constant_equals_concrete_cost() {
        // Degenerate sweep edge: with miss_penalty = 0 (and no d-cache) the
        // symbolic penalty terms contribute nothing, so the formula's
        // constant term must equal the concrete cost.
        let m = Machine { miss_penalty: 0, ..Machine::i960kb() };
        let p = looped_program();
        let cfg = Cfg::build(FuncId(0), &p.functions[0]);
        for blk in &cfg.blocks {
            let concrete = block_cost(&m, &p.functions[0], blk);
            let form = block_cost_param(&m, &p.functions[0], blk);
            assert_eq!(concrete.worst_cold, concrete.worst_warm);
            assert_eq!(form.worst_cold.constant_part(), concrete.worst_warm as i128);
            assert_eq!(form.best.constant_part(), concrete.best as i128);
        }
        assert_param_matches_concrete(&m);
    }

    #[test]
    fn zero_dmiss_penalty_formula_constant_equals_concrete_cost() {
        // Same edge for the data cache: dmiss_penalty = 0 makes loads free
        // to miss, so worst_warm collapses onto its constant term.
        let m = Machine { dmiss_penalty: 0, miss_penalty: 0, ..Machine::i960kb_with_dcache() };
        let p = looped_program();
        let cfg = Cfg::build(FuncId(0), &p.functions[0]);
        for blk in &cfg.blocks {
            let concrete = block_cost(&m, &p.functions[0], blk);
            let form = block_cost_param(&m, &p.functions[0], blk);
            assert_eq!(form.worst_warm.constant_part(), concrete.worst_warm as i128);
            assert_eq!(form.worst_cold.constant_part(), concrete.worst_cold as i128);
        }
        assert_param_matches_concrete(&m);
    }

    #[test]
    fn dcache_machine_charges_loads_to_dmiss_symbol() {
        let m = Machine::i960kb_with_dcache();
        let p = looped_program();
        let cfg = Cfg::build(FuncId(0), &p.functions[0]);
        let form = block_cost_param(&m, &p.functions[0], &cfg.blocks[0]);
        // The entry block has exactly one load.
        assert_eq!(form.worst_warm.coeff(P_DMISS), 1);
        assert_eq!(form.worst_cold.coeff(P_DMISS), 1);
    }
}

#[cfg(test)]
mod dcache_tests {
    use super::*;
    use ipet_arch::{AsmBuilder, FuncId, Program, Reg};
    use ipet_cfg::Cfg;

    #[test]
    fn data_cache_charges_loads_in_the_worst_case_only() {
        let plain = Machine::i960kb();
        let cached = Machine::i960kb_with_dcache();
        let mut b = AsmBuilder::new("f");
        b.ld(Reg::T0, Reg::FP, 0);
        b.ld(Reg::temp(1), Reg::FP, 1);
        b.st(Reg::T0, Reg::FP, 2);
        b.ret();
        let p = Program::new(vec![b.finish().unwrap()], vec![], FuncId(0)).unwrap();
        let cfg = Cfg::build(FuncId(0), &p.functions[0]);
        let c_plain = block_cost(&plain, &p.functions[0], &cfg.blocks[0]);
        let c_cached = block_cost(&cached, &p.functions[0], &cfg.blocks[0]);
        // No dcache: loads are deterministic, no extra worst-case term.
        assert_eq!(c_plain.worst_warm - c_plain.best, 0);
        // With a dcache: two loads may each miss; stores are write-through.
        assert_eq!(c_cached.worst_warm - c_cached.best, 2 * cached.dmiss_penalty);
        // The hit cost is cheaper than uncached memory.
        assert!(c_cached.best < c_plain.best);
    }
}
