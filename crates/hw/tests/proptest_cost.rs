//! Property tests on the static block-cost model.

use ipet_arch::{AluOp, AsmBuilder, Cond, FuncId, Program, Reg};
use ipet_cfg::Cfg;
use ipet_hw::{block_cost, Machine};
use proptest::prelude::*;

/// A random straight-line instruction body (no control flow except the
/// optional trailing conditional branch), returned as a finished program.
fn arb_program() -> impl Strategy<Value = (Program, bool)> {
    let instr = prop_oneof![
        (0u8..4, 0u8..4).prop_map(|(d, s)| (0u8, d, s, 0i32)), // mov
        (0u8..4, -100i32..100).prop_map(|(d, imm)| (1u8, d, 0, imm)), // ldc
        (0u8..4, 0u8..4, 0u8..10).prop_map(|(d, a, op)| (2u8, d, a, op as i32)), // alu
        (0u8..4, -4i32..8).prop_map(|(d, off)| (3u8, d, 0, off)), // ld
        (0u8..4, -4i32..8).prop_map(|(s, off)| (4u8, s, 0, off)), // st
    ];
    (prop::collection::vec(instr, 1..20), any::<bool>()).prop_map(|(body, branch)| {
        let mut b = AsmBuilder::new("f");
        let done = b.fresh_label();
        for (kind, x, y, z) in &body {
            let rx = Reg::temp(*x);
            let ry = Reg::temp(*y);
            match kind {
                0 => {
                    b.mov(rx, ry);
                }
                1 => {
                    b.ldc(rx, *z);
                }
                2 => {
                    let op = AluOp::ALL[*z as usize % AluOp::ALL.len()];
                    b.alu(op, rx, ry, 3);
                }
                3 => {
                    b.ld(rx, Reg::FP, *z);
                }
                _ => {
                    b.st(rx, Reg::FP, *z);
                }
            }
        }
        if branch {
            b.br(Cond::Eq, Reg::T0, 0, done);
        }
        b.bind(done);
        b.ret();
        let f = b.finish().unwrap();
        (Program::new(vec![f], vec![], FuncId(0)).unwrap(), branch)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The three cost figures are always ordered, and strictly separated
    /// by the cache penalty.
    #[test]
    fn costs_are_ordered((program, _) in arb_program()) {
        let machine = Machine::i960kb();
        let f = program.entry_function();
        let cfg = Cfg::build(FuncId(0), f);
        for blk in &cfg.blocks {
            let c = block_cost(&machine, f, blk);
            prop_assert!(c.best <= c.worst_warm);
            prop_assert!(c.worst_warm < c.worst_cold, "cold adds >= one line fill");
            prop_assert!(c.worst_cold - c.worst_warm >= machine.miss_penalty);
        }
    }

    /// Block cost is bounded below by the per-class base cycles and grows
    /// monotonically with the miss penalty.
    #[test]
    fn cost_lower_bound_and_penalty_monotonicity((program, _) in arb_program()) {
        let machine = Machine::i960kb();
        let bigger = Machine { miss_penalty: machine.miss_penalty + 5, ..machine };
        let f = program.entry_function();
        let cfg = Cfg::build(FuncId(0), f);
        for blk in &cfg.blocks {
            let base: u64 = f.instrs[blk.start..blk.end]
                .iter()
                .map(|i| machine.class_cycles(i.class()))
                .sum();
            let c = block_cost(&machine, f, blk);
            prop_assert!(c.best >= base);
            let c2 = block_cost(&bigger, f, blk);
            prop_assert!(c2.worst_cold > c.worst_cold);
            prop_assert_eq!(c2.best, c.best);
            prop_assert_eq!(c2.worst_warm, c.worst_warm);
        }
    }

    /// A trailing conditional branch is the only source of best/warm-worst
    /// asymmetry in straight-line code.
    #[test]
    fn branch_penalty_is_the_only_warm_gap((program, branch) in arb_program()) {
        let machine = Machine::i960kb();
        let f = program.entry_function();
        let cfg = Cfg::build(FuncId(0), f);
        let c = block_cost(&machine, f, &cfg.blocks[0]);
        if branch {
            prop_assert_eq!(c.worst_warm - c.best, machine.branch_taken_penalty);
        } else {
            prop_assert_eq!(c.worst_warm, c.best);
        }
    }
}
