//! # ipet-baseline
//!
//! The state of the art the paper argues against: **explicit path
//! enumeration** in the style of Park & Shaw. Feasible paths through one
//! procedure's CFG are walked one by one (under user loop bounds), and the
//! extreme costs are taken over the walked set.
//!
//! The point of this crate is the comparison experiment: the number of
//! paths is exponential in the number of sequential branches ("this runs
//! out of steam rather quickly"), while the ILP formulation of `ipet-core`
//! considers them all implicitly. [`PathEnumerator`] therefore counts the
//! paths it explores and reports truncation honestly when the budget is
//! exhausted.
//!
//! Scope: one procedure at a time (like Park's IDL). Call edges are
//! traversed as ordinary edges; callee cost can be folded into the call
//! block's cost by the caller if desired.
//!
//! ## Example
//!
//! ```
//! use ipet_baseline::{diamond_chain_program, PathEnumerator};
//! use ipet_cfg::Cfg;
//! use ipet_hw::{block_cost, Machine};
//! use std::collections::HashMap;
//!
//! let program = diamond_chain_program(4); // 2^4 = 16 paths
//! let cfg = Cfg::build(program.entry, program.entry_function());
//! let machine = Machine::i960kb();
//! let costs: Vec<_> = cfg
//!     .blocks
//!     .iter()
//!     .map(|b| block_cost(&machine, program.entry_function(), b))
//!     .collect();
//! let result = PathEnumerator::new(&cfg, &costs, &HashMap::new(), u64::MAX)?
//!     .enumerate();
//! assert_eq!(result.paths_explored, 16);
//! assert!(!result.truncated);
//! # Ok::<(), ipet_baseline::EnumError>(())
//! ```

use ipet_cfg::{BlockId, Cfg, EdgeId, EdgeKind, LoopInfo};
use ipet_hw::BlockCost;
use std::collections::HashMap;
use std::fmt;

/// Errors from explicit enumeration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnumError {
    /// A loop has no bound, so the path set is infinite.
    MissingLoopBound(BlockId),
    /// `costs` does not cover every block.
    BadCosts { blocks: usize, costs: usize },
}

impl fmt::Display for EnumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnumError::MissingLoopBound(b) => {
                write!(f, "loop headed at {b} has no iteration bound")
            }
            EnumError::BadCosts { blocks, costs } => {
                write!(f, "{costs} costs supplied for {blocks} blocks")
            }
        }
    }
}

impl std::error::Error for EnumError {}

/// Result of an enumeration run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumResult {
    /// Complete entry-to-exit paths examined.
    pub paths_explored: u64,
    /// True when the path budget was exhausted before the walk finished —
    /// the reported bound is then *not* safe, which is exactly the
    /// methodological weakness the paper points out.
    pub truncated: bool,
    /// Best-case cycles over explored paths (`None` when no path completed).
    pub best: Option<u64>,
    /// Worst-case cycles over explored paths.
    pub worst: Option<u64>,
    /// Blocks of the most expensive explored path.
    pub worst_path: Vec<BlockId>,
}

/// Explicit enumerator over one CFG.
#[derive(Debug)]
pub struct PathEnumerator<'a> {
    cfg: &'a Cfg,
    costs: &'a [BlockCost],
    /// `header -> max iterations per entry`.
    bounds: HashMap<BlockId, u64>,
    loops: Vec<LoopInfo>,
    max_paths: u64,
}

impl<'a> PathEnumerator<'a> {
    /// Creates an enumerator.
    ///
    /// `loop_bounds` maps loop headers to their maximum iterations per
    /// entry (the same numbers the IPET annotations carry).
    ///
    /// # Errors
    ///
    /// Fails when costs do not cover the blocks or a loop is unbounded.
    pub fn new(
        cfg: &'a Cfg,
        costs: &'a [BlockCost],
        loop_bounds: &HashMap<BlockId, u64>,
        max_paths: u64,
    ) -> Result<PathEnumerator<'a>, EnumError> {
        if costs.len() != cfg.num_blocks() {
            return Err(EnumError::BadCosts { blocks: cfg.num_blocks(), costs: costs.len() });
        }
        let loops = cfg.loops();
        for l in &loops {
            if !loop_bounds.contains_key(&l.header) {
                return Err(EnumError::MissingLoopBound(l.header));
            }
        }
        Ok(PathEnumerator { cfg, costs, bounds: loop_bounds.clone(), loops, max_paths })
    }

    /// Walks every feasible path (within the budget) and returns the
    /// extreme costs.
    pub fn enumerate(&self) -> EnumResult {
        let mut state = Walk {
            enumerator: self,
            result: EnumResult {
                paths_explored: 0,
                truncated: false,
                best: None,
                worst: None,
                worst_path: Vec::new(),
            },
            path: Vec::new(),
            back_counts: HashMap::new(),
        };
        state.visit(self.cfg.entry, 0, 0);
        state.result
    }

    fn back_edge_header(&self, edge: EdgeId) -> Option<BlockId> {
        self.loops.iter().find(|l| l.back_edges.contains(&edge)).map(|l| l.header)
    }
}

struct Walk<'e, 'a> {
    enumerator: &'e PathEnumerator<'a>,
    result: EnumResult,
    path: Vec<BlockId>,
    /// Back-edge traversals per loop header along the current path.
    back_counts: HashMap<BlockId, u64>,
}

impl Walk<'_, '_> {
    fn visit(&mut self, block: BlockId, best_so_far: u64, worst_so_far: u64) {
        if self.result.paths_explored >= self.enumerator.max_paths {
            self.result.truncated = true;
            return;
        }
        self.path.push(block);
        let c = self.enumerator.costs[block.0];
        let best = best_so_far + c.best;
        let worst = worst_so_far + c.worst_cold;

        for e in self.enumerator.cfg.out_edges(block) {
            if self.result.truncated {
                break;
            }
            let edge = self.enumerator.cfg.edges[e.0];
            match edge.kind {
                EdgeKind::Exit => {
                    self.result.paths_explored += 1;
                    if self.result.best.map(|b| best < b).unwrap_or(true) {
                        self.result.best = Some(best);
                    }
                    if self.result.worst.map(|w| worst > w).unwrap_or(true) {
                        self.result.worst = Some(worst);
                        self.result.worst_path = self.path.clone();
                    }
                }
                EdgeKind::Entry => unreachable!("entry edges have no source block"),
                EdgeKind::Internal | EdgeKind::Call(_) => {
                    let to = edge.to.expect("non-exit edges have targets");
                    if let Some(header) = self.enumerator.back_edge_header(e) {
                        let limit = self.enumerator.bounds[&header];
                        let count = self.back_counts.entry(header).or_insert(0);
                        if *count >= limit {
                            continue; // iteration bound exhausted
                        }
                        *count += 1;
                        self.visit(to, best, worst);
                        *self.back_counts.get_mut(&header).expect("just inserted") -= 1;
                    } else {
                        self.visit(to, best, worst);
                    }
                }
            }
        }
        self.path.pop();
    }
}

/// Builds a synthetic single-function program with `k` sequential
/// if-then-else diamonds (2^k acyclic paths) — the scalability workload for
/// the explicit-vs-implicit comparison. Arms are given different costs so
/// the worst path is unique.
pub fn diamond_chain_program(k: usize) -> ipet_arch::Program {
    use ipet_arch::{AluOp, AsmBuilder, Cond, FuncId, Reg};
    let mut b = AsmBuilder::new("diamonds");
    for i in 0..k {
        let els = b.fresh_label();
        let join = b.fresh_label();
        b.br(Cond::Eq, Reg::A0, i as i32, els);
        // then-arm: cheap
        b.alu(AluOp::Add, Reg::T0, Reg::T0, 1);
        b.jmp(join);
        b.bind(els);
        // else-arm: expensive (multiply + divide)
        b.alu(AluOp::Mul, Reg::T0, Reg::T0, 3);
        b.alu(AluOp::Div, Reg::T0, Reg::T0, 2);
        b.bind(join);
    }
    b.mov(Reg::RV, Reg::T0);
    b.ret();
    ipet_arch::Program::new(vec![b.finish().unwrap()], vec![], FuncId(0))
        .expect("diamond chain is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipet_arch::{AluOp, AsmBuilder, Cond, FuncId, Program, Reg};
    use ipet_hw::{block_cost, Machine};

    fn costs_of(p: &Program, cfg: &Cfg) -> Vec<BlockCost> {
        let m = Machine::i960kb();
        cfg.blocks.iter().map(|b| block_cost(&m, &p.functions[cfg.func.0], b)).collect()
    }

    #[test]
    fn diamond_chain_has_exponential_paths() {
        for k in [1usize, 3, 6] {
            let p = diamond_chain_program(k);
            let cfg = Cfg::build(FuncId(0), &p.functions[0]);
            let costs = costs_of(&p, &cfg);
            let e = PathEnumerator::new(&cfg, &costs, &HashMap::new(), u64::MAX).unwrap();
            let r = e.enumerate();
            assert_eq!(r.paths_explored, 1 << k, "k={k}");
            assert!(!r.truncated);
            assert!(r.worst.unwrap() > r.best.unwrap());
        }
    }

    #[test]
    fn truncation_reported() {
        let p = diamond_chain_program(10);
        let cfg = Cfg::build(FuncId(0), &p.functions[0]);
        let costs = costs_of(&p, &cfg);
        let e = PathEnumerator::new(&cfg, &costs, &HashMap::new(), 100).unwrap();
        let r = e.enumerate();
        assert!(r.truncated);
        assert!(r.paths_explored <= 100);
    }

    #[test]
    fn loop_bound_limits_iterations() {
        // while loop with bound 3: paths with 0..=3 iterations = 4 paths.
        let mut b = AsmBuilder::new("wl");
        let head = b.fresh_label();
        let out = b.fresh_label();
        b.ldc(Reg::T0, 0);
        b.bind(head);
        b.br(Cond::Ge, Reg::T0, 10, out);
        b.alu(AluOp::Add, Reg::T0, Reg::T0, 1);
        b.jmp(head);
        b.bind(out);
        b.ret();
        let p = Program::new(vec![b.finish().unwrap()], vec![], FuncId(0)).unwrap();
        let cfg = Cfg::build(FuncId(0), &p.functions[0]);
        let costs = costs_of(&p, &cfg);
        let mut bounds = HashMap::new();
        bounds.insert(BlockId(1), 3u64);
        let e = PathEnumerator::new(&cfg, &costs, &bounds, u64::MAX).unwrap();
        let r = e.enumerate();
        assert_eq!(r.paths_explored, 4);
        // Worst path takes all 3 iterations: header appears 4 times.
        let headers = r.worst_path.iter().filter(|&&b| b == BlockId(1)).count();
        assert_eq!(headers, 4);
    }

    #[test]
    fn missing_loop_bound_is_an_error() {
        let mut b = AsmBuilder::new("wl");
        let head = b.fresh_label();
        b.bind(head);
        b.br(Cond::Eq, Reg::A0, 0, head);
        b.ret();
        let p = Program::new(vec![b.finish().unwrap()], vec![], FuncId(0)).unwrap();
        let cfg = Cfg::build(FuncId(0), &p.functions[0]);
        let costs = costs_of(&p, &cfg);
        assert!(matches!(
            PathEnumerator::new(&cfg, &costs, &HashMap::new(), 10),
            Err(EnumError::MissingLoopBound(_))
        ));
    }

    #[test]
    fn cost_arity_checked() {
        let p = diamond_chain_program(1);
        let cfg = Cfg::build(FuncId(0), &p.functions[0]);
        assert!(matches!(
            PathEnumerator::new(&cfg, &[], &HashMap::new(), 10),
            Err(EnumError::BadCosts { .. })
        ));
    }

    #[test]
    fn agrees_with_straight_line_cost() {
        let mut b = AsmBuilder::new("s");
        b.nop();
        b.nop();
        b.ret();
        let p = Program::new(vec![b.finish().unwrap()], vec![], FuncId(0)).unwrap();
        let cfg = Cfg::build(FuncId(0), &p.functions[0]);
        let costs = costs_of(&p, &cfg);
        let e = PathEnumerator::new(&cfg, &costs, &HashMap::new(), 10).unwrap();
        let r = e.enumerate();
        assert_eq!(r.paths_explored, 1);
        assert_eq!(r.best.unwrap(), costs[0].best);
        assert_eq!(r.worst.unwrap(), costs[0].worst_cold);
    }
}

#[cfg(test)]
mod path_tests {
    use super::*;
    use ipet_arch::FuncId;
    use ipet_cfg::Cfg;
    use ipet_hw::{block_cost, Machine};

    #[test]
    fn worst_path_is_a_connected_entry_to_exit_walk() {
        let p = diamond_chain_program(5);
        let cfg = Cfg::build(FuncId(0), p.entry_function());
        let m = Machine::i960kb();
        let costs: Vec<_> =
            cfg.blocks.iter().map(|b| block_cost(&m, p.entry_function(), b)).collect();
        let r = PathEnumerator::new(&cfg, &costs, &HashMap::new(), u64::MAX).unwrap().enumerate();
        let path = &r.worst_path;
        assert_eq!(path.first(), Some(&cfg.entry));
        for w in path.windows(2) {
            assert!(
                cfg.successors(w[0]).contains(&w[1]),
                "consecutive path blocks are CFG successors"
            );
        }
        let last = *path.last().unwrap();
        assert!(cfg.exit_blocks().contains(&last), "path ends at an exit");
        // The path cost really is the reported worst.
        let cost: u64 = path.iter().map(|b| costs[b.0].worst_cold).sum();
        assert_eq!(Some(cost), r.worst);
    }

    #[test]
    fn budget_zero_explores_nothing() {
        let p = diamond_chain_program(2);
        let cfg = Cfg::build(FuncId(0), p.entry_function());
        let m = Machine::i960kb();
        let costs: Vec<_> =
            cfg.blocks.iter().map(|b| block_cost(&m, p.entry_function(), b)).collect();
        let r = PathEnumerator::new(&cfg, &costs, &HashMap::new(), 0).unwrap().enumerate();
        assert!(r.truncated);
        assert_eq!(r.paths_explored, 0);
        assert_eq!(r.worst, None);
    }
}
