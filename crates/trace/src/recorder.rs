//! The thread-safe recorder and the trace document it aggregates into.
//!
//! The recorder keeps three kinds of metrics, all aggregated by name:
//!
//! * **counters** — monotonically increasing `u64` sums. Counter totals are
//!   part of the pipeline's determinism contract: dedup, sharding and the
//!   plan fold are worker-count-independent, so counter totals must be too.
//! * **gauges** — high-water marks merged with `max`. `max` is associative
//!   and commutative, so gauges stay order-invariant under parallelism.
//! * **spans** — named durations aggregated into `{count, wall_ns}`. The
//!   `count` side is deterministic; `wall_ns` is wall-clock and is excluded
//!   from determinism comparisons and gate invariants.
//!
//! Counters recorded while a worker context is set (see
//! [`set_worker`](crate::set_worker)) are *additionally* tallied under that
//! worker id, giving a per-worker breakdown that is scheduling-dependent by
//! nature and therefore lives in its own section of the document.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::json::{parse, Json, ParseError};

/// Aggregated statistics for one named span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStat {
    /// How many times the span ran. Deterministic.
    pub count: u64,
    /// Total wall-clock nanoseconds across runs. Not deterministic.
    pub wall_ns: u64,
}

/// A name → value counter map with saturating merge.
pub type CounterMap = BTreeMap<String, u64>;

/// Merges `src` into `dst` by saturating addition. Saturating `+` on `u64`
/// is associative and commutative, so merge order (and hence worker
/// scheduling) cannot change the result.
pub fn merge_counters(dst: &mut CounterMap, src: &CounterMap) {
    for (name, value) in src {
        let slot = dst.entry(name.clone()).or_insert(0);
        *slot = slot.saturating_add(*value);
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: CounterMap,
    gauges: BTreeMap<String, u64>,
    spans: BTreeMap<String, SpanStat>,
    workers: BTreeMap<u64, CounterMap>,
}

/// A thread-safe metric aggregator.
///
/// All methods take `&self`; a single `Mutex` guards the maps. The hot
/// paths of the pipeline only reach a recorder through the crate-level
/// helpers, which skip the lock entirely when no recorder is installed.
#[derive(Debug, Default)]
pub struct Recorder {
    inner: Mutex<Inner>,
}

impl Recorder {
    /// A fresh, empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter (saturating). When `worker` is
    /// set, the delta is also tallied under that worker id.
    pub fn add_counter(&self, name: &str, delta: u64, worker: Option<u64>) {
        let mut inner = self.inner.lock().unwrap();
        let slot = inner.counters.entry(name.to_string()).or_insert(0);
        *slot = slot.saturating_add(delta);
        if let Some(w) = worker {
            let per = inner.workers.entry(w).or_default().entry(name.to_string()).or_insert(0);
            *per = per.saturating_add(delta);
        }
    }

    /// Raises the named gauge to `value` if it is below it.
    pub fn gauge_max(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock().unwrap();
        let slot = inner.gauges.entry(name.to_string()).or_insert(0);
        *slot = (*slot).max(value);
    }

    /// Records one completed run of the named span.
    pub fn add_span(&self, name: &str, wall_ns: u64) {
        let mut inner = self.inner.lock().unwrap();
        let slot = inner.spans.entry(name.to_string()).or_default();
        slot.count = slot.count.saturating_add(1);
        slot.wall_ns = slot.wall_ns.saturating_add(wall_ns);
    }

    /// Snapshots the current state into an immutable document.
    pub fn snapshot(&self) -> TraceDoc {
        let inner = self.inner.lock().unwrap();
        TraceDoc {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            spans: inner.spans.clone(),
            workers: inner.workers.clone(),
        }
    }

    /// Clears all recorded metrics. Used between runs that share one
    /// installed global recorder (e.g. consecutive `experiments`
    /// subcommand phases).
    pub fn reset(&self) {
        let mut inner = self.inner.lock().unwrap();
        *inner = Inner::default();
    }
}

/// Version tag embedded in every serialized trace document.
pub const TRACE_SCHEMA: &str = "ipet-trace-v1";

/// An immutable snapshot of everything a [`Recorder`] aggregated.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceDoc {
    /// Deterministic counter totals.
    pub counters: CounterMap,
    /// Deterministic high-water marks.
    pub gauges: BTreeMap<String, u64>,
    /// Span aggregates; `count` deterministic, `wall_ns` not.
    pub spans: BTreeMap<String, SpanStat>,
    /// Per-worker counter breakdown. Scheduling-dependent.
    pub workers: BTreeMap<u64, CounterMap>,
}

impl TraceDoc {
    /// Serializes to a JSON value (keys sorted — `BTreeMap` iteration
    /// order — so rendering is deterministic given deterministic content).
    pub fn to_json(&self) -> Json {
        let counter_obj = |m: &CounterMap| {
            Json::Obj(m.iter().map(|(k, v)| (k.clone(), Json::Num(*v as f64))).collect())
        };
        Json::Obj(vec![
            ("schema".to_string(), Json::Str(TRACE_SCHEMA.to_string())),
            ("counters".to_string(), counter_obj(&self.counters)),
            ("gauges".to_string(), counter_obj(&self.gauges)),
            (
                "spans".to_string(),
                Json::Obj(
                    self.spans
                        .iter()
                        .map(|(k, s)| {
                            (
                                k.clone(),
                                Json::Obj(vec![
                                    ("count".to_string(), Json::Num(s.count as f64)),
                                    ("wall_ns".to_string(), Json::Num(s.wall_ns as f64)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
            (
                "workers".to_string(),
                Json::Obj(
                    self.workers.iter().map(|(w, m)| (w.to_string(), counter_obj(m))).collect(),
                ),
            ),
        ])
    }

    /// Reconstructs a document from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] when the input is not valid JSON or does
    /// not match the `ipet-trace-v1` schema.
    pub fn from_json(value: &Json) -> Result<Self, ParseError> {
        let bad = |m: &str| ParseError { message: m.to_string(), offset: 0 };
        match value.get("schema").and_then(Json::as_str) {
            Some(TRACE_SCHEMA) => {}
            _ => return Err(bad("missing or unknown trace schema tag")),
        }
        let counter_map = |v: Option<&Json>, what: &str| -> Result<CounterMap, ParseError> {
            let obj = v.and_then(Json::as_obj).ok_or_else(|| bad(what))?;
            obj.iter()
                .map(|(k, v)| {
                    v.as_u64().map(|n| (k.clone(), n)).ok_or_else(|| bad("non-integer metric"))
                })
                .collect()
        };
        let mut spans = BTreeMap::new();
        for (name, s) in
            value.get("spans").and_then(Json::as_obj).ok_or_else(|| bad("missing spans"))?
        {
            let count =
                s.get("count").and_then(Json::as_u64).ok_or_else(|| bad("bad span count"))?;
            let wall_ns =
                s.get("wall_ns").and_then(Json::as_u64).ok_or_else(|| bad("bad span wall_ns"))?;
            spans.insert(name.clone(), SpanStat { count, wall_ns });
        }
        let mut workers = BTreeMap::new();
        for (id, m) in
            value.get("workers").and_then(Json::as_obj).ok_or_else(|| bad("missing workers"))?
        {
            let id: u64 = id.parse().map_err(|_| bad("non-numeric worker id"))?;
            workers.insert(id, counter_map(Some(m), "bad worker counters")?);
        }
        Ok(TraceDoc {
            counters: counter_map(value.get("counters"), "missing counters")?,
            gauges: counter_map(value.get("gauges"), "missing gauges")?,
            spans,
            workers,
        })
    }

    /// Parses a rendered document string.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on malformed JSON or schema mismatch.
    pub fn parse(text: &str) -> Result<Self, ParseError> {
        Self::from_json(&parse(text)?)
    }

    /// The deterministic view: flat `key = value` pairs covering counters,
    /// gauges and span *counts* — everything that must be bit-identical
    /// across worker counts. Wall-clock fields and the per-worker
    /// breakdown are deliberately absent.
    pub fn deterministic_view(&self) -> Vec<(String, u64)> {
        let mut out = Vec::new();
        for (k, v) in &self.counters {
            out.push((format!("counter.{k}"), *v));
        }
        for (k, v) in &self.gauges {
            out.push((format!("gauge.{k}"), *v));
        }
        for (k, s) in &self.spans {
            out.push((format!("span.{k}.count"), s.count));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_aggregates_all_metric_kinds() {
        let r = Recorder::new();
        r.add_counter("a", 2, None);
        r.add_counter("a", 3, Some(1));
        r.gauge_max("g", 5);
        r.gauge_max("g", 4);
        r.add_span("s", 100);
        r.add_span("s", 50);
        let doc = r.snapshot();
        assert_eq!(doc.counters["a"], 5);
        assert_eq!(doc.gauges["g"], 5);
        assert_eq!(doc.spans["s"], SpanStat { count: 2, wall_ns: 150 });
        assert_eq!(doc.workers[&1]["a"], 3);
    }

    #[test]
    fn reset_clears_everything() {
        let r = Recorder::new();
        r.add_counter("a", 1, Some(0));
        r.gauge_max("g", 1);
        r.add_span("s", 1);
        r.reset();
        assert_eq!(r.snapshot(), TraceDoc::default());
    }

    #[test]
    fn json_round_trip_preserves_document() {
        let r = Recorder::new();
        r.add_counter("lp.ilp.solves", 56, Some(0));
        r.add_counter("pool.cache.hits", 28, Some(3));
        r.gauge_max("lp.problem.vars.peak", 141);
        r.add_span("pool.solve_batch", 1_234_567);
        let doc = r.snapshot();
        assert_eq!(TraceDoc::parse(&doc.to_json().render()).unwrap(), doc);
        assert_eq!(TraceDoc::parse(&doc.to_json().render_pretty()).unwrap(), doc);
    }

    #[test]
    fn deterministic_view_excludes_wall_clock_and_workers() {
        let r = Recorder::new();
        r.add_counter("c", 1, Some(7));
        r.add_span("s", 999);
        let view = r.snapshot().deterministic_view();
        assert_eq!(view, vec![("counter.c".to_string(), 1), ("span.s.count".to_string(), 1)]);
    }

    #[test]
    fn counter_merge_saturates() {
        let mut a = CounterMap::from([("x".to_string(), u64::MAX - 1)]);
        let b = CounterMap::from([("x".to_string(), 5), ("y".to_string(), 1)]);
        merge_counters(&mut a, &b);
        assert_eq!(a["x"], u64::MAX);
        assert_eq!(a["y"], 1);
    }
}
