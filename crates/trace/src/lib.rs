//! # ipet-trace — structured observability for the IPET pipeline
//!
//! A zero-dependency structured-event layer: named **counters**, high-water
//! **gauges**, and **spans** with monotonic timing, aggregated by a
//! thread-safe [`Recorder`] and serialized as one JSON trace document.
//!
//! ## Usage model
//!
//! The layer follows the `log`-crate pattern: producers (the `lang`, `cfg`,
//! `core`, `lp` and `pool` crates) call free functions —
//! [`counter`], [`gauge_max`], [`span`] — unconditionally; consumers (the
//! `cinderella` CLI, the `experiments` harness, tests) decide whether a
//! recorder is installed. When none is, every helper returns after a single
//! `Relaxed` atomic load: no lock, no allocation, no time syscall.
//!
//! ```
//! let _ = ipet_trace::install(); // once, near main()
//! ipet_trace::counter("lp.ilp.solves", 1);
//! {
//!     let _guard = ipet_trace::span("core.plan");
//!     // ... work measured by the span ...
//! }
//! let doc = ipet_trace::snapshot().unwrap();
//! assert_eq!(doc.counters["lp.ilp.solves"], 1);
//! # ipet_trace::recorder().unwrap().reset();
//! ```
//!
//! ## Determinism contract
//!
//! Counter totals, gauge values and span *counts* depend only on the work
//! performed, never on how it was scheduled: counters merge by saturating
//! addition and gauges by `max`, both associative and commutative. The
//! pipeline keeps its side of the bargain by deduping and sharding
//! deterministically, so `TraceDoc::deterministic_view()` is bit-identical
//! for any `--jobs` value. Wall-clock fields (`wall_ns`) and the per-worker
//! breakdown (`workers`) are scheduling-dependent and excluded from that
//! view.

pub mod json;
mod recorder;

pub use json::{parse as parse_json, Json, ParseError};
pub use recorder::{merge_counters, CounterMap, Recorder, SpanStat, TraceDoc, TRACE_SCHEMA};

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static ACTIVE: AtomicBool = AtomicBool::new(false);
static GLOBAL: OnceLock<Recorder> = OnceLock::new();

thread_local! {
    static WORKER: Cell<Option<u64>> = const { Cell::new(None) };
}

/// Installs the process-global recorder and returns it. Idempotent: later
/// calls return the already-installed recorder. Installation cannot be
/// undone (the recorder can be [`Recorder::reset`] instead).
pub fn install() -> &'static Recorder {
    let r = GLOBAL.get_or_init(Recorder::new);
    ACTIVE.store(true, Ordering::Release);
    r
}

/// The installed recorder, if any.
pub fn recorder() -> Option<&'static Recorder> {
    if enabled() {
        GLOBAL.get()
    } else {
        None
    }
}

/// Whether a recorder is installed. One relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Snapshots the installed recorder, if any.
pub fn snapshot() -> Option<TraceDoc> {
    recorder().map(Recorder::snapshot)
}

/// Tags the current thread as pool worker `id`; counters recorded on this
/// thread are additionally tallied per worker. Returns a guard restoring
/// the previous tag on drop, so nested batches keep their attribution.
pub fn set_worker(id: u64) -> WorkerGuard {
    let prev = WORKER.with(|w| w.replace(Some(id)));
    WorkerGuard { prev }
}

/// Restores the previous worker tag on drop. See [`set_worker`].
#[must_use]
pub struct WorkerGuard {
    prev: Option<u64>,
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        WORKER.with(|w| w.set(self.prev));
    }
}

/// The current thread's worker tag, if inside [`set_worker`].
pub fn worker() -> Option<u64> {
    WORKER.with(Cell::get)
}

/// Adds `delta` to the named counter. No-op unless installed.
#[inline]
pub fn counter(name: &str, delta: u64) {
    if let Some(r) = recorder() {
        r.add_counter(name, delta, worker());
    }
}

/// Raises the named gauge to `value` if below it. No-op unless installed.
#[inline]
pub fn gauge_max(name: &str, value: u64) {
    if let Some(r) = recorder() {
        r.gauge_max(name, value);
    }
}

/// Starts a span; its wall time and one run-count are recorded when the
/// returned guard drops. When no recorder is installed the guard is inert
/// and no clock is read.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if enabled() {
        SpanGuard { name, start: Some(Instant::now()) }
    } else {
        SpanGuard { name, start: None }
    }
}

/// Live span handle; records on drop. Created by [`span`].
#[must_use]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let (Some(start), Some(r)) = (self.start, recorder()) {
            r.add_span(self.name, start.elapsed().as_nanos() as u64);
        }
    }
}
