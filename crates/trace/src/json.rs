//! A minimal JSON value, renderer and parser.
//!
//! The workspace builds offline, so instead of `serde_json` the trace layer
//! carries its own value type covering exactly what trace documents need:
//! objects with ordered keys (documents are built from `BTreeMap`s, so
//! rendering is deterministic), strings, numbers, booleans, arrays and
//! null. Numbers are `f64`; integers are rendered without a decimal point
//! and survive round-trips exactly up to 2^53, far beyond any counter the
//! pipeline produces.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; integral values render without a fraction.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved (and deterministic when built
    /// from sorted maps).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer (rejecting fractions and negatives).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object members, if the value is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation — the format committed
    /// baselines use, so git diffs of a refresh stay readable.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let pad = |out: &mut String, depth: usize| {
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * depth));
            }
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&render_number(*n)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, depth + 1);
                    v.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    pad(out, depth);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                if !members.is_empty() {
                    pad(out, depth);
                }
                out.push('}');
            }
        }
    }
}

fn render_number(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
        format!("{}", n as i64)
    } else {
        // `{:?}` is Rust's shortest round-trippable float form.
        format!("{n:?}")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what was expected and the byte offset it failed at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or trailing garbage.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { message: message.to_string(), offset: self.pos }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected '\"'")?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the plain span.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            s.push(cp);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    /// Reads `uXXXX` (the `\` already consumed, `u` under the cursor),
    /// including surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        let hex4 = |p: &mut Parser<'a>| -> Result<u32, ParseError> {
            p.eat(b'u', "expected 'u'")?;
            let mut v = 0u32;
            for _ in 0..4 {
                let d = p.peek().and_then(|b| (b as char).to_digit(16));
                match d {
                    Some(d) => {
                        v = v * 16 + d;
                        p.pos += 1;
                    }
                    None => return Err(p.err("invalid \\u escape")),
                }
            }
            Ok(v)
        };
        let hi = hex4(self)?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: a `\uXXXX` low surrogate must follow.
            self.eat(b'\\', "expected low surrogate")?;
            let lo = hex4(self)?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err(self.err("invalid low surrogate"));
            }
            let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            char::from_u32(cp).ok_or_else(|| self.err("invalid surrogate pair"))
        } else {
            char::from_u32(hi).ok_or_else(|| self.err("invalid code point"))
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_scalars() {
        for (v, text) in [
            (Json::Null, "null"),
            (Json::Bool(true), "true"),
            (Json::Num(42.0), "42"),
            (Json::Num(-1.5), "-1.5"),
            (Json::Str("a\"b\\c\nd".into()), r#""a\"b\\c\nd""#),
        ] {
            assert_eq!(v.render(), text);
            assert_eq!(parse(text).unwrap(), v);
        }
    }

    #[test]
    fn round_trips_nested_documents() {
        let doc = Json::Obj(vec![
            ("counters".into(), Json::Obj(vec![("a.b".into(), Json::Num(3.0))])),
            ("list".into(), Json::Arr(vec![Json::Num(1.0), Json::Null, Json::Bool(false)])),
            ("text".into(), Json::Str("mixed \u{1F300} unicode \t".into())),
        ]);
        assert_eq!(parse(&doc.render()).unwrap(), doc);
        assert_eq!(parse(&doc.render_pretty()).unwrap(), doc);
    }

    #[test]
    fn parses_unicode_escapes_and_surrogates() {
        assert_eq!(parse(r#""Aß""#).unwrap(), Json::Str("Aß".into()));
        assert_eq!(parse(r#""🌀""#).unwrap(), Json::Str("\u{1F300}".into()));
        assert!(parse(r#""\ud83c""#).is_err());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn big_integers_stay_exact() {
        let n = (1u64 << 53) - 1;
        let v = Json::Num(n as f64);
        assert_eq!(v.render(), n.to_string());
        assert_eq!(parse(&v.render()).unwrap().as_u64(), Some(n));
    }
}
