//! The installed path, end to end, including cross-thread aggregation.
//!
//! The recorder is process-global, so everything runs inside one test
//! function — parallel test functions sharing the global would race on
//! `reset()`.

use std::collections::BTreeMap;

use ipet_trace::{SpanStat, TraceDoc};

#[test]
fn global_recorder_end_to_end() {
    let recorder = ipet_trace::install();
    assert!(ipet_trace::enabled());
    assert!(std::ptr::eq(ipet_trace::install(), recorder), "install is idempotent");

    // Main-thread recording, no worker context.
    ipet_trace::counter("core.plan.calls", 1);
    {
        let _span = ipet_trace::span("core.plan");
    }

    // Worker threads: same counters land in the shared totals and in the
    // per-worker breakdown, whatever the interleaving.
    std::thread::scope(|scope| {
        for w in 0..4u64 {
            scope.spawn(move || {
                let _guard = ipet_trace::set_worker(w);
                for _ in 0..10 {
                    ipet_trace::counter("pool.worker.jobs", 1);
                }
                ipet_trace::gauge_max("lp.problem.vars.peak", 100 + w);
            });
        }
    });

    let doc = ipet_trace::snapshot().expect("installed");
    assert_eq!(doc.counters["core.plan.calls"], 1);
    assert_eq!(doc.counters["pool.worker.jobs"], 40);
    assert_eq!(doc.gauges["lp.problem.vars.peak"], 103);
    assert_eq!(doc.spans["core.plan"].count, 1);
    assert_eq!(doc.workers.len(), 4);
    for w in 0..4u64 {
        assert_eq!(doc.workers[&w]["pool.worker.jobs"], 10);
    }

    // Worker tags nest and restore.
    {
        let _outer = ipet_trace::set_worker(8);
        {
            let _inner = ipet_trace::set_worker(9);
            assert_eq!(ipet_trace::worker(), Some(9));
        }
        assert_eq!(ipet_trace::worker(), Some(8));
    }
    assert_eq!(ipet_trace::worker(), None);

    // The document round-trips through its JSON form.
    let parsed = TraceDoc::parse(&doc.to_json().render_pretty()).expect("round trip");
    assert_eq!(parsed, doc);

    // The deterministic view covers counters, gauges and span counts only.
    let view: BTreeMap<String, u64> = doc.deterministic_view().into_iter().collect();
    assert_eq!(view["counter.pool.worker.jobs"], 40);
    assert_eq!(view["gauge.lp.problem.vars.peak"], 103);
    assert_eq!(view["span.core.plan.count"], 1);
    assert!(view.keys().all(|k| !k.contains("wall") && !k.contains("worker.0")));

    // Reset leaves an installed but empty recorder.
    recorder.reset();
    assert!(ipet_trace::enabled());
    assert_eq!(ipet_trace::snapshot().unwrap(), TraceDoc::default());

    // Span timing still records after reset.
    {
        let _span = ipet_trace::span("lang.parse");
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let doc = ipet_trace::snapshot().unwrap();
    let SpanStat { count, wall_ns } = doc.spans["lang.parse"];
    assert_eq!(count, 1);
    assert!(wall_ns > 0, "span must accumulate wall time");
}
