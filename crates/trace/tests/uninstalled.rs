//! The uninstalled path: no recorder → every helper is a silent no-op.
//!
//! This file must stay its own test binary and must never call
//! `ipet_trace::install()` — the recorder is process-global, and any other
//! test in the same process installing it would invalidate these checks.

#[test]
fn helpers_are_inert_without_a_recorder() {
    assert!(!ipet_trace::enabled());
    assert!(ipet_trace::recorder().is_none());
    assert!(ipet_trace::snapshot().is_none());

    // None of these may panic or observe anything.
    ipet_trace::counter("lp.ilp.solves", 17);
    ipet_trace::gauge_max("lp.problem.vars.peak", 99);
    {
        let _span = ipet_trace::span("core.plan");
    }
    {
        let _worker = ipet_trace::set_worker(3);
        ipet_trace::counter("pool.worker.jobs", 1);
        assert_eq!(ipet_trace::worker(), Some(3));
    }
    assert_eq!(ipet_trace::worker(), None);

    // Still uninstalled afterwards: nothing was recorded anywhere.
    assert!(!ipet_trace::enabled());
    assert!(ipet_trace::snapshot().is_none());
}
