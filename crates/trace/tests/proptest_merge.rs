//! Property tests for the determinism contract: counter merging is
//! associative and commutative, so the order workers drain (and the order
//! their tallies fold) cannot change the totals. Also property-checks the
//! trace-document JSON round trip over arbitrary metric names and values.
//!
//! Values stay below 2^50 so sums fit JSON's exact-integer range (2^53).

use std::collections::BTreeMap;

use ipet_trace::{merge_counters, CounterMap, Recorder, SpanStat, TraceDoc};
use proptest::prelude::*;

const MAX_VAL: u64 = 1 << 50;

fn counter_map() -> impl Strategy<Value = CounterMap> {
    prop::collection::vec((0u8..12, 0u64..MAX_VAL), 0..12)
        .prop_map(|pairs| pairs.into_iter().map(|(k, v)| (format!("metric.{k}"), v)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn merge_is_commutative(a in counter_map(), b in counter_map()) {
        let mut ab = a.clone();
        merge_counters(&mut ab, &b);
        let mut ba = b.clone();
        merge_counters(&mut ba, &a);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative(a in counter_map(), b in counter_map(), c in counter_map()) {
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        merge_counters(&mut left, &b);
        merge_counters(&mut left, &c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        merge_counters(&mut bc, &c);
        let mut right = a.clone();
        merge_counters(&mut right, &bc);
        prop_assert_eq!(left, right);
    }

    /// Any permutation of worker tallies folds to the same totals — the
    /// exact shape of the pool's order-independence claim.
    #[test]
    fn fold_is_order_invariant(maps in prop::collection::vec(counter_map(), 1..6), rot in 0usize..6) {
        let mut forward = CounterMap::new();
        for m in &maps {
            merge_counters(&mut forward, m);
        }
        let mut rotated = CounterMap::new();
        let n = maps.len();
        for i in 0..n {
            merge_counters(&mut rotated, &maps[(i + rot) % n]);
        }
        let mut reversed = CounterMap::new();
        for m in maps.iter().rev() {
            merge_counters(&mut reversed, m);
        }
        prop_assert_eq!(&forward, &rotated);
        prop_assert_eq!(&forward, &reversed);
    }

    /// A recorder fed per-worker batches in any order snapshots the same
    /// counter totals (the live, locked version of the merge property).
    #[test]
    fn recorder_totals_ignore_feed_order(maps in prop::collection::vec(counter_map(), 1..5)) {
        let feed = |order: &mut dyn Iterator<Item = &CounterMap>| {
            let r = Recorder::new();
            for (w, m) in order.enumerate() {
                let _g = ipet_trace::set_worker(w as u64);
                for (k, v) in m {
                    r.add_counter(k, *v, ipet_trace::worker());
                }
            }
            r.snapshot().counters
        };
        let forward = feed(&mut maps.iter());
        let backward = feed(&mut maps.iter().rev());
        prop_assert_eq!(forward, backward);
    }

    #[test]
    fn trace_doc_json_round_trips(
        counters in counter_map(),
        gauges in counter_map(),
        spans in prop::collection::vec((0u8..8, 0u64..MAX_VAL, 0u64..MAX_VAL), 0..8),
        workers in prop::collection::vec((0u64..16, counter_map()), 0..4),
    ) {
        let doc = TraceDoc {
            counters,
            gauges,
            spans: spans
                .into_iter()
                .map(|(k, count, wall_ns)| (format!("span.{k}"), SpanStat { count, wall_ns }))
                .collect(),
            workers: workers.into_iter().collect::<BTreeMap<_, _>>(),
        };
        prop_assert_eq!(TraceDoc::parse(&doc.to_json().render()).unwrap(), doc.clone());
        prop_assert_eq!(TraceDoc::parse(&doc.to_json().render_pretty()).unwrap(), doc);
    }
}
