//! Cross-crate property tests: on randomly generated programs, the ILP
//! formulation must agree exactly with explicit path enumeration, and
//! simulated runs must always land inside the estimated bound.

use ipet_baseline::PathEnumerator;
use ipet_cfg::Cfg;
use ipet_core::Analyzer;
use ipet_hw::{block_cost, Machine};
use ipet_lang::{BinOp, Expr, ExprKind, FuncDecl, Item, Module, Stmt};
use ipet_sim::{SimConfig, Simulator};
use proptest::prelude::*;
use std::collections::HashMap;

fn num(n: i64) -> Expr {
    Expr { kind: ExprKind::Num(n), line: 1 }
}

fn var(name: &str) -> Expr {
    Expr { kind: ExprKind::Var(name.into()), line: 1 }
}

fn binop(op: BinOp, l: Expr, r: Expr) -> Expr {
    Expr { kind: ExprKind::Binary(op, Box::new(l), Box::new(r)), line: 1 }
}

/// A random loop-free statement tree over locals `a` (the argument) and
/// `t` (scratch): arithmetic assignments and nested if/else.
fn arb_stmts() -> impl Strategy<Value = Vec<Stmt>> {
    let assign = (
        0i64..50,
        prop_oneof![Just(BinOp::Add), Just(BinOp::Sub), Just(BinOp::Mul), Just(BinOp::Div)],
    )
        .prop_map(|(n, op)| Stmt::Assign {
            name: "t".into(),
            value: binop(op, var("t"), num(n + 1)),
            line: 1,
        });
    let stmt = assign.prop_recursive(3, 24, 4, |inner| {
        (
            -10i64..10,
            prop_oneof![Just(BinOp::Lt), Just(BinOp::Eq), Just(BinOp::Ge)],
            prop::collection::vec(inner.clone(), 1..3),
            prop::collection::vec(inner, 0..3),
        )
            .prop_map(|(threshold, cmp, then_branch, else_branch)| Stmt::If {
                cond: binop(cmp, var("a"), num(threshold)),
                then_branch,
                else_branch,
                line: 1,
            })
    });
    prop::collection::vec(stmt, 1..6)
}

fn program_of(body: Vec<Stmt>) -> ipet_arch::Program {
    let mut stmts = vec![Stmt::Decl { name: "t".into(), init: Some(num(1)), line: 1 }];
    stmts.extend(body);
    stmts.push(Stmt::Return { value: Some(var("t")), line: 1 });
    let module = Module {
        items: vec![Item::Func(FuncDecl {
            name: "f".into(),
            params: vec!["a".into()],
            body: stmts,
            line: 1,
        })],
    };
    ipet_lang::compile_module(&module, "f").expect("generated program compiles")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// §II equivalence: on loop-free programs, IPET's implicit bound equals
    /// the explicit enumeration over all paths — both directions.
    #[test]
    fn implicit_equals_explicit_on_random_programs(body in arb_stmts()) {
        let program = program_of(body);
        let machine = Machine::i960kb();
        let cfg = Cfg::build(program.entry, program.entry_function());
        let costs: Vec<_> = cfg
            .blocks
            .iter()
            .map(|b| block_cost(&machine, program.entry_function(), b))
            .collect();
        let explicit = PathEnumerator::new(&cfg, &costs, &HashMap::new(), 1_000_000)
            .unwrap()
            .enumerate();
        prop_assume!(!explicit.truncated);

        let analyzer = Analyzer::new(&program, machine).unwrap();
        let est = analyzer.analyze("").unwrap();
        prop_assert_eq!(Some(est.bound.upper), explicit.worst);
        prop_assert_eq!(Some(est.bound.lower), explicit.best);
        prop_assert!(est.total_stats().first_relaxation_integral);
    }

    /// Soundness under random inputs: every simulated run of a random
    /// program lands inside the estimated bound.
    #[test]
    fn random_runs_stay_inside_the_bound(
        body in arb_stmts(),
        inputs in prop::collection::vec(-20i32..20, 1..8),
    ) {
        let program = program_of(body);
        let machine = Machine::i960kb();
        let analyzer = Analyzer::new(&program, machine).unwrap();
        let est = analyzer.analyze("").unwrap();
        for a in inputs {
            // Worst-case protocol: cold cache, like the static worst case.
            let mut sim = Simulator::new(&program, machine, SimConfig::default());
            let r = sim.run(&[a]).unwrap();
            prop_assert!(
                est.bound.lower <= r.cycles && r.cycles <= est.bound.upper,
                "a={a}: {} outside [{}, {}]",
                r.cycles,
                est.bound.lower,
                est.bound.upper
            );
        }
    }
}

/// Soundness of `check_data`'s published bound over many random data sets.
#[test]
fn check_data_bound_holds_for_random_data() {
    use rand::{Rng, SeedableRng};
    let b = ipet_suite::by_name("check_data").unwrap();
    let program = b.program().unwrap();
    let machine = Machine::i960kb();
    let analyzer = Analyzer::new(&program, machine).unwrap();
    let est = analyzer.analyze(&b.annotations(&program)).unwrap();

    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC1DE);
    for _ in 0..200 {
        let data: Vec<i32> = (0..10).map(|_| rng.gen_range(-3..50)).collect();
        let mut sim = Simulator::new(&program, machine, SimConfig::default());
        sim.seed_global("data", &data).unwrap();
        let r = sim.run(&[]).unwrap();
        assert!(
            est.bound.lower <= r.cycles && r.cycles <= est.bound.upper,
            "data {data:?}: {} outside {:?}",
            r.cycles,
            est.bound
        );
    }
}

/// The same soundness sweep for `piksrt` over random permutations.
#[test]
fn piksrt_bound_holds_for_random_permutations() {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let b = ipet_suite::by_name("piksrt").unwrap();
    let program = b.program().unwrap();
    let machine = Machine::i960kb();
    let analyzer = Analyzer::new(&program, machine).unwrap();
    let est = analyzer.analyze(&b.annotations(&program)).unwrap();

    let mut rng = rand::rngs::StdRng::seed_from_u64(0x50FF);
    for _ in 0..100 {
        let mut data: Vec<i32> = (0..10).collect();
        data.shuffle(&mut rng);
        let mut sim = Simulator::new(&program, machine, SimConfig::default());
        sim.seed_global("arr", &data).unwrap();
        let r = sim.run(&[]).unwrap();
        assert!(
            est.bound.lower <= r.cycles && r.cycles <= est.bound.upper,
            "perm {data:?}: {} outside {:?}",
            r.cycles,
            est.bound
        );
    }
}
