//! Functional correctness of the compiler + simulator substrate:
//! compiled mini-C programs must compute the same results as Rust
//! reference implementations.

use ipet_sim::{SimConfig, Simulator};

fn run(source: &str, entry: &str, seeds: &[(&str, Vec<i32>)], args: &[i32]) -> (i32, Vec<i32>) {
    let program = ipet_lang::compile(source, entry).expect("compiles");
    let machine = ipet_sim::Machine::i960kb();
    let mut sim = Simulator::new(&program, machine, SimConfig::default());
    for (name, data) in seeds {
        sim.seed_global(name, data).unwrap();
    }
    let result = sim.run(args).expect("runs");
    let globals: Vec<i32> = program
        .globals
        .first()
        .map(|g| sim.read_global(&g.name, g.words as usize).unwrap())
        .unwrap_or_default();
    (result.return_value, globals)
}

#[test]
fn insertion_sort_sorts() {
    let b = ipet_suite::by_name("piksrt").unwrap();
    let input = vec![9, 3, 7, 1, 8, 2, 6, 0, 5, 4];
    let (_, arr) = run(b.source, b.entry, &[("arr", input.clone())], &[]);
    let mut expect = input;
    expect.sort_unstable();
    assert_eq!(arr, expect);
}

#[test]
fn check_data_finds_first_negative() {
    let b = ipet_suite::by_name("check_data").unwrap();
    let (rv, _) = run(b.source, b.entry, &[("data", vec![1; 10])], &[]);
    assert_eq!(rv, 1, "no negative element -> 1");
    let (rv, _) = run(b.source, b.entry, &[("data", vec![1, 1, -3, 1, 1, 1, 1, 1, 1, 1])], &[]);
    assert_eq!(rv, 0, "negative element -> 0");
}

#[test]
fn line_draws_its_endpoints() {
    let b = ipet_suite::by_name("line").unwrap();
    let program = ipet_lang::compile(b.source, b.entry).unwrap();
    let machine = ipet_sim::Machine::i960kb();
    let mut sim = Simulator::new(&program, machine, SimConfig::default());
    let r = sim.run(&[3, 4, 10, 9]).unwrap();
    assert_eq!(r.return_value, 7, "steps = max(|dx|, |dy|)");
    let screen = sim.read_global("screen", 4096).unwrap();
    assert_eq!(screen[4 * 64 + 3], 1, "start pixel set");
    assert_eq!(screen[9 * 64 + 10], 1, "end pixel set");
}

#[test]
fn circle_is_eightfold_symmetric() {
    let b = ipet_suite::by_name("circle").unwrap();
    let program = ipet_lang::compile(b.source, b.entry).unwrap();
    let machine = ipet_sim::Machine::i960kb();
    let mut sim = Simulator::new(&program, machine, SimConfig::default());
    sim.run(&[31, 31, 10]).unwrap();
    let screen = sim.read_global("screen", 4096).unwrap();
    let at = |x: i32, y: i32| screen[(y * 64 + x) as usize];
    // All eight octant reflections of any lit pixel are lit.
    let mut lit = 0;
    for y in 0..64 {
        for x in 0..64 {
            if at(x, y) == 1 {
                lit += 1;
                let (dx, dy) = (x - 31, y - 31);
                assert_eq!(at(31 - dx, y), 1);
                assert_eq!(at(x, 31 - dy), 1);
                assert_eq!(at(31 + dy, 31 + dx), 1);
            }
        }
    }
    assert!(lit >= 40, "a radius-10 circle lights plenty of pixels, got {lit}");
}

#[test]
fn matgen_matches_reference_lcg() {
    let b = ipet_suite::by_name("matgen").unwrap();
    let (rv, a) = run(b.source, b.entry, &[], &[]);
    // Reference implementation.
    let mut seed: i64 = 1325;
    let mut expect = vec![0i32; 400];
    let mut norma: i64 = 0;
    for i in 0..20 {
        for j in 0..20 {
            seed = (3125 * seed) % 65536;
            let v = (seed - 32768) as i32;
            expect[j * 20 + i] = v;
            norma += (v >> 8) as i64;
        }
    }
    assert_eq!(a, expect);
    assert_eq!(rv as i64, norma);
}

#[test]
fn fft_of_zero_signal_is_zero() {
    let b = ipet_suite::by_name("fft").unwrap();
    let (rv, re) = run(b.source, b.entry, &[("re", vec![0; 32]), ("im", vec![0; 32])], &[]);
    assert_eq!(rv, 0);
    assert!(re.iter().all(|&v| v == 0));
}

#[test]
fn fft_dc_component_sums_constant_signal() {
    let b = ipet_suite::by_name("fft").unwrap();
    // Constant signal c: X[0] = N*c (up to truncation of integer twiddles).
    let (rv, _) = run(b.source, b.entry, &[("re", vec![8; 32]), ("im", vec![0; 32])], &[]);
    assert_eq!(rv, 32 * 8);
}

#[test]
fn recon_copy_mode_copies() {
    let b = ipet_suite::by_name("recon").unwrap();
    let program = ipet_lang::compile(b.source, b.entry).unwrap();
    let machine = ipet_sim::Machine::i960kb();
    let mut sim = Simulator::new(&program, machine, SimConfig::default());
    let src: Vec<i32> = (0..324).collect();
    sim.seed_global("src", &src).unwrap();
    sim.run(&[0, 0]).unwrap();
    let dst = sim.read_global("dst", 256).unwrap();
    for j in 0..16 {
        for i in 0..16 {
            assert_eq!(dst[j * 16 + i], src[j * 18 + i]);
        }
    }
}

#[test]
fn recon_average_mode_averages() {
    let b = ipet_suite::by_name("recon").unwrap();
    let program = ipet_lang::compile(b.source, b.entry).unwrap();
    let machine = ipet_sim::Machine::i960kb();
    let mut sim = Simulator::new(&program, machine, SimConfig::default());
    let src: Vec<i32> = (0..324).map(|i| i * 2).collect();
    sim.seed_global("src", &src).unwrap();
    sim.run(&[1, 0]).unwrap();
    let dst = sim.read_global("dst", 256).unwrap();
    for j in 0..16 {
        for i in 0..16 {
            let s = j * 18 + i;
            assert_eq!(dst[j * 16 + i], (src[s] + src[s + 1] + 1) / 2);
        }
    }
}

#[test]
fn fullsearch_finds_planted_match() {
    let b = ipet_suite::by_name("fullsearch").unwrap();
    let program = ipet_lang::compile(b.source, b.entry).unwrap();
    let machine = ipet_sim::Machine::i960kb();
    let mut sim = Simulator::new(&program, machine, SimConfig::default());
    // Plant the current block at offset (+2, -1) from the search centre.
    let cur: Vec<i32> = (0..64).map(|i| (i * 7) % 50).collect();
    let mut reference = vec![99; 1024];
    let (cx, cy) = (12i32, 12i32);
    let (px, py) = (cx + 2, cy - 1);
    for j in 0..8 {
        for i in 0..8 {
            reference[((py + j) * 32 + px + i) as usize] = cur[(j * 8 + i) as usize];
        }
    }
    sim.seed_global("cur", &cur).unwrap();
    sim.seed_global("ref", &reference).unwrap();
    let r = sim.run(&[cx, cy]).unwrap();
    assert_eq!(r.return_value, 0, "exact match has SAD 0");
    assert_eq!(sim.read_global("bestx", 1).unwrap(), vec![2]);
    assert_eq!(sim.read_global("besty", 1).unwrap(), vec![-1]);
}

#[test]
fn dhry_string_compare_detects_difference() {
    let b = ipet_suite::by_name("dhry").unwrap();
    let program = ipet_lang::compile(b.source, b.entry).unwrap();
    let machine = ipet_sim::Machine::i960kb();
    let mut sim = Simulator::new(&program, machine, SimConfig::default());
    sim.seed_global("str1", &[7; 30]).unwrap();
    sim.seed_global("str2", &[7; 30]).unwrap();
    let equal = sim.run(&[]).unwrap().return_value;
    sim.reset_data();
    sim.seed_global("str1", &[7; 30]).unwrap();
    sim.seed_global("str2", &[8; 30]).unwrap();
    let differ = sim.run(&[]).unwrap().return_value;
    // func2 == 1 adds, == 0 subtracts: 20 iterations apart by 2 each.
    assert_eq!(equal - differ, 40);
}

#[test]
fn des_is_deterministic_and_key_sensitive() {
    let b = ipet_suite::by_name("des").unwrap();
    let seeds = (b.worst_seeds)();
    let program = ipet_lang::compile(b.source, b.entry).unwrap();
    let machine = ipet_sim::Machine::i960kb();
    let mut sim = Simulator::new(&program, machine, SimConfig::default());
    for (name, data) in &seeds {
        sim.seed_global(name, data).unwrap();
    }
    let c1 = sim.run(&[1, 2]).unwrap().return_value;
    sim.reset_data();
    for (name, data) in &seeds {
        sim.seed_global(name, data).unwrap();
    }
    let c1_again = sim.run(&[1, 2]).unwrap().return_value;
    // (inputs below also exercise the expanded key schedule + permutation)
    assert_eq!(c1, c1_again, "deterministic");
    sim.reset_data();
    for (name, data) in &seeds {
        sim.seed_global(name, data).unwrap();
    }
    // The 32-entry permutation samples odd bit positions (mod 32), so
    // vary a sampled bit: r = 2 flips bit 1 relative to r = 0.
    let c2 = sim.run(&[1, 0]).unwrap().return_value;
    assert_ne!(c1, c2, "different plaintext, different ciphertext");
}

#[test]
fn whetstone_is_input_independent() {
    let b = ipet_suite::by_name("whetstone").unwrap();
    let (r1, _) = run(b.source, b.entry, &[], &[]);
    let (r2, _) = run(b.source, b.entry, &[], &[]);
    assert_eq!(r1, r2);
}

#[test]
fn jpeg_fdct_then_idct_roughly_preserves_dc() {
    // Not a numerical-accuracy test (the integer constants are coarse):
    // the forward DCT of a constant block concentrates energy in the DC
    // coefficient.
    let b = ipet_suite::by_name("jpeg_fdct_islow").unwrap();
    let (_, block) = run(b.source, b.entry, &[("block", vec![16; 64])], &[]);
    let dc = block[0].abs();
    let max_ac = block[1..].iter().map(|v| v.abs()).max().unwrap();
    assert!(dc > 0);
    assert!(dc >= max_ac, "dc {dc} vs max ac {max_ac}");
}
