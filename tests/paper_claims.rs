//! Integration tests for the paper's headline claims, spanning all crates.

use ipet_core::{Analyzer, TimeBound};
use ipet_hw::Machine;
use ipet_sim::measure;

fn machine() -> Machine {
    Machine::i960kb()
}

/// Fig. 1 / correctness criterion: the estimated bound must enclose the
/// actual bound on every benchmark — checked against both the calculated
/// (count-instrumented) and measured (cycle-simulated) references.
#[test]
fn estimated_bounds_are_safe_everywhere() {
    for b in ipet_suite::all() {
        let program = b.program().unwrap();
        let analyzer = Analyzer::new(&program, machine()).unwrap();
        let est = analyzer.analyze(&b.annotations(&program)).unwrap();
        let worst = measure(&program, machine(), &(b.worst_seeds)(), b.args_worst, true).unwrap();
        let best = measure(&program, machine(), &(b.best_seeds)(), b.args_best, false).unwrap();
        let measured = TimeBound { lower: best.cycles, upper: worst.cycles };
        let calculated = analyzer.calculated_bound(&best.block_counts, &worst.block_counts);
        assert!(est.bound.encloses(measured), "{}: measured escapes", b.name);
        assert!(est.bound.encloses(calculated), "{}: calculated escapes", b.name);
        assert!(calculated.encloses(measured), "{}: simulation inconsistent", b.name);
    }
}

/// §III-D: "the branch-and-bound ILP solver finds that the solution of the
/// very first linear program call it makes is integer valued" — on every
/// ILP of every benchmark.
#[test]
fn first_lp_relaxation_is_integral_on_all_benchmarks() {
    for b in ipet_suite::all() {
        let program = b.program().unwrap();
        let analyzer = Analyzer::new(&program, machine()).unwrap();
        let est = analyzer.analyze(&b.annotations(&program)).unwrap();
        let stats = est.total_stats();
        assert!(
            stats.first_relaxation_integral,
            "{}: needed branching ({} nodes)",
            b.name, stats.nodes
        );
        // No branching means exactly one LP call per ILP solved.
        assert_eq!(stats.lp_calls, stats.nodes, "{}", b.name);
    }
}

/// Table I: dhry expands to 8 constraint sets of which 5 are pruned as
/// null ("8)3"), and every other benchmark matches its declared set count.
#[test]
fn constraint_set_counts_match_table_one() {
    for b in ipet_suite::all() {
        let program = b.program().unwrap();
        let analyzer = Analyzer::new(&program, machine()).unwrap();
        let est = analyzer.analyze(&b.annotations(&program)).unwrap();
        assert_eq!(est.sets_total as u32, b.paper.sets, "{}: total sets", b.name);
        assert_eq!(
            (est.sets_total - est.sets_pruned) as u32,
            b.paper.sets_after_prune,
            "{}: sets after pruning",
            b.name
        );
    }
}

/// Table II shape: with full annotations the path analysis is accurate —
/// small relative pessimism against the calculated bound.
#[test]
fn path_analysis_pessimism_is_small() {
    for b in ipet_suite::all() {
        let program = b.program().unwrap();
        let analyzer = Analyzer::new(&program, machine()).unwrap();
        let est = analyzer.analyze(&b.annotations(&program)).unwrap();
        let worst = measure(&program, machine(), &(b.worst_seeds)(), b.args_worst, true).unwrap();
        let best = measure(&program, machine(), &(b.best_seeds)(), b.args_best, false).unwrap();
        let calculated = analyzer.calculated_bound(&best.block_counts, &worst.block_counts);
        let (pl, pu) = est.bound.pessimism_against(calculated);
        assert!(pl <= 0.10, "{}: lower pessimism {pl:.3} too large", b.name);
        assert!(pu <= 0.10, "{}: upper pessimism {pu:.3} too large", b.name);
    }
}

/// Table III shape: the hardware-model pessimism against the measured
/// bound is substantially larger than the path-analysis pessimism — the
/// paper's conclusion that the simple all-miss model dominates the error.
#[test]
fn hardware_model_dominates_the_pessimism() {
    let mut any_large = false;
    for b in ipet_suite::all() {
        let program = b.program().unwrap();
        let analyzer = Analyzer::new(&program, machine()).unwrap();
        let est = analyzer.analyze(&b.annotations(&program)).unwrap();
        let worst = measure(&program, machine(), &(b.worst_seeds)(), b.args_worst, true).unwrap();
        let best = measure(&program, machine(), &(b.best_seeds)(), b.args_best, false).unwrap();
        let measured = TimeBound { lower: best.cycles, upper: worst.cycles };
        let (_, pu) = est.bound.pessimism_against(measured);
        if pu > 0.3 {
            any_large = true;
        }
    }
    assert!(any_large, "expected sizeable measured-bound pessimism somewhere");
}

/// §II: on programs where the explicit walk completes, explicit and
/// implicit enumeration agree exactly; and the explicit path count grows
/// as 2^k.
#[test]
fn explicit_and_implicit_agree_and_paths_double() {
    use ipet_baseline::{diamond_chain_program, PathEnumerator};
    use ipet_cfg::Cfg;
    use ipet_hw::block_cost;
    use std::collections::HashMap;

    let mut last_paths = 0;
    for k in [1usize, 3, 5, 7, 9] {
        let program = diamond_chain_program(k);
        let cfg = Cfg::build(program.entry, program.entry_function());
        let costs: Vec<_> = cfg
            .blocks
            .iter()
            .map(|blk| block_cost(&machine(), program.entry_function(), blk))
            .collect();
        let r = PathEnumerator::new(&cfg, &costs, &HashMap::new(), u64::MAX).unwrap().enumerate();
        assert_eq!(r.paths_explored, 1 << k);
        if last_paths > 0 {
            assert_eq!(r.paths_explored, last_paths * 4); // k steps by 2
        }
        last_paths = r.paths_explored;

        let analyzer = Analyzer::new(&program, machine()).unwrap();
        let est = analyzer.analyze("").unwrap();
        assert_eq!(Some(est.bound.upper), r.worst, "k={k}");
        assert_eq!(Some(est.bound.lower), r.best, "k={k}");
    }
}

/// The §IV cache refinement is monotone (never looser) and safe (never
/// below the simulated worst case) on every benchmark.
#[test]
fn cache_split_is_monotone_and_safe() {
    use ipet_core::CacheMode;
    for b in ipet_suite::all() {
        let program = b.program().unwrap();
        let ann = b.annotations(&program);
        let base = Analyzer::new(&program, machine()).unwrap().analyze(&ann).unwrap();
        let split = Analyzer::new(&program, machine())
            .unwrap()
            .with_cache_mode(CacheMode::FirstIterSplit)
            .analyze(&ann)
            .unwrap();
        let worst = measure(&program, machine(), &(b.worst_seeds)(), b.args_worst, true).unwrap();
        assert!(split.bound.upper <= base.bound.upper, "{}", b.name);
        assert!(worst.cycles <= split.bound.upper, "{}", b.name);
        assert_eq!(split.bound.lower, base.bound.lower, "{}: BCET unaffected", b.name);
    }
}

/// The soundness containment also holds on the alternative machine
/// models: the §VII DSP3210 port and the data-cache refinement.
#[test]
fn bounds_are_safe_on_alternative_machines() {
    for m in [Machine::dsp3210(), Machine::i960kb_with_dcache()] {
        for b in ipet_suite::all() {
            let program = b.program().unwrap();
            let analyzer = Analyzer::new(&program, m).unwrap();
            let est = analyzer.analyze(&b.annotations(&program)).unwrap();
            let worst = measure(&program, m, &(b.worst_seeds)(), b.args_worst, true).unwrap();
            let best = measure(&program, m, &(b.best_seeds)(), b.args_best, false).unwrap();
            let measured = TimeBound { lower: best.cycles, upper: worst.cycles };
            assert!(est.bound.encloses(measured), "{} on {m:?}", b.name);
        }
    }
}

/// The paper's two formulations — per-call-site instances (eq. 18 style)
/// and the shared-CFG coupling `d_entry = f1 + f2 + ...` (eq. 12) — must
/// produce identical bounds whenever block costs are context-independent
/// (they always are here: cost is a function of the block alone).
#[test]
fn shared_and_per_call_site_formulations_agree() {
    use ipet_core::ContextMode;
    for b in ipet_suite::all() {
        let program = b.program().unwrap();
        let ann = b.annotations(&program);
        let per_site = Analyzer::new(&program, machine()).unwrap().analyze(&ann).unwrap();
        let shared = Analyzer::new_with_context(&program, machine(), ContextMode::Shared)
            .unwrap()
            .analyze(&ann)
            .unwrap();
        assert_eq!(per_site.bound, shared.bound, "{}", b.name);
        assert_eq!(per_site.sets_total, shared.sets_total, "{}", b.name);
        assert!(shared.total_stats().first_relaxation_integral, "{}", b.name);
    }
}
