//! Workspace root package: see crate-level docs of the member crates.
//! Re-exports the high-level API for examples and integration tests.
pub use ipet_core as core_api;
