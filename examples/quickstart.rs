//! Quickstart: bound the running time of a small mini-C routine.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The flow is the paper's: compile to the i960-flavoured target, let the
//! analyzer extract structural constraints from the CFG, supply the one
//! piece of information only the programmer has — the loop bound — and
//! solve the two ILPs for the estimated bound `[t_min, t_max]`.

use ipet_core::Analyzer;
use ipet_hw::Machine;
use ipet_sim::{SimConfig, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A routine with one input-dependent loop: sum of the first n odd
    // numbers, n at most 50.
    let source = "
        int sum_odds(int n) {
            int i;
            int total;
            total = 0;
            for (i = 0; i < n; i = i + 1) {
                total = total + 2 * i + 1;
            }
            return total;
        }
    ";
    let program = ipet_lang::compile(source, "sum_odds")?;
    let machine = Machine::i960kb();
    let analyzer = Analyzer::new(&program, machine)?;

    // What does the tool need from us? Exactly the loops it found:
    for (func, header) in analyzer.loops_needing_bounds() {
        println!("loop found in {func} headed at block {header}");
    }

    // The caller guarantees n <= 50.
    let estimate = analyzer.analyze("fn sum_odds { loop x2 in [0, 50]; }")?;
    println!("estimated bound: [{}, {}] cycles", estimate.bound.lower, estimate.bound.upper);

    // Cross-check against the simulator at both extremes.
    let mut sim = Simulator::new(&program, machine, SimConfig::default());
    let worst = sim.run(&[50])?;
    sim.reset_data();
    let best = sim.run(&[0])?;
    println!("simulated: n=0 -> {} cycles, n=50 -> {} cycles", best.cycles, worst.cycles);
    assert!(estimate.bound.lower <= best.cycles);
    assert!(worst.cycles <= estimate.bound.upper);
    println!("containment holds: t_min <= T_min <= T_max <= t_max");
    Ok(())
}
