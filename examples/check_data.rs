//! The paper's running example (Fig. 5): `check_data` from Park's thesis,
//! annotated step by step.
//!
//! ```text
//! cargo run --example check_data
//! ```
//!
//! Shows how each layer of user information tightens the estimated bound:
//! loop bound only, then the mutual-exclusion disjunction (eq. 16), then
//! the equal-execution fact (eq. 17).

use ipet_core::Analyzer;
use ipet_hw::Machine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = ipet_suite::by_name("check_data").expect("bundled benchmark");
    let program = bench.program()?;
    let machine = Machine::i960kb();
    let analyzer = Analyzer::new(&program, machine)?;

    println!("source:{}", bench.source);

    // Step 1: the mandatory minimum — the loop bound (paper eqs. 14-15).
    let step1 = analyzer.analyze("fn check_data { loop x2 in [1, 10]; }")?;
    println!(
        "loop bound only:        [{:>4}, {:>5}]  ({} set)",
        step1.bound.lower, step1.bound.upper, step1.sets_total
    );

    // Step 2: eq. (16) — the found-negative arm (x6) and the scan-exhausted
    // arm (x8) are mutually exclusive and each runs at most once.
    let step2 = analyzer.analyze(
        "fn check_data {
            loop x2 in [1, 10];
            (x6 = 0 & x8 = 1) | (x6 = 1 & x8 = 0);
        }",
    )?;
    println!(
        "+ mutual exclusion:     [{:>4}, {:>5}]  ({} sets)",
        step2.bound.lower, step2.bound.upper, step2.sets_total
    );

    // Step 3: eq. (17) — found-negative and `return 0` go together.
    let step3 = analyzer.analyze(&bench.annotations(&program))?;
    println!(
        "+ x6 = x13:             [{:>4}, {:>5}]  ({} sets)",
        step3.bound.lower, step3.bound.upper, step3.sets_total
    );

    assert!(step2.bound.upper <= step1.bound.upper);
    assert!(step3.bound.upper <= step2.bound.upper);

    println!("\nworst-case block counts (the ILP's implicit path):");
    for (label, count) in &step3.wcet_counts {
        println!("  {label:<24} {count}");
    }
    Ok(())
}
