//! A DSP scheduling scenario: budget a frame-processing pipeline from
//! WCET analysis, then validate the budget in simulation.
//!
//! ```text
//! cargo run --example dsp_pipeline
//! ```
//!
//! This is the paper's motivating use case ("these bounds are also
//! required by schedulers in real-time operating systems"): a decoder
//! task chain — motion search, reconstruction, inverse DCT — must fit a
//! frame budget. We bound each stage with IPET and check the sum.

use ipet_core::Analyzer;
use ipet_hw::Machine;
use ipet_sim::measure;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = Machine::i960kb();
    let stages = ["fullsearch", "recon", "jpeg_idct_islow"];
    let clock_mhz = 20.0; // the paper's QT960 runs at 20 MHz

    let mut budget_cycles = 0u64;
    let mut observed_cycles = 0u64;
    println!("{:<18} {:>12} {:>12} {:>10}", "stage", "wcet(cyc)", "observed", "margin");
    for name in stages {
        let bench = ipet_suite::by_name(name).expect("bundled benchmark");
        let program = bench.program()?;
        let analyzer = Analyzer::new(&program, machine)?;
        let est = analyzer.analyze(&bench.annotations(&program))?;
        let worst = measure(&program, machine, &(bench.worst_seeds)(), bench.args_worst, true)?;
        assert!(worst.cycles <= est.bound.upper, "{name}: unsound bound");
        let margin = 100.0 * (est.bound.upper - worst.cycles) as f64 / worst.cycles as f64;
        println!("{name:<18} {:>12} {:>12} {:>9.1}%", est.bound.upper, worst.cycles, margin);
        budget_cycles += est.bound.upper;
        observed_cycles += worst.cycles;
    }

    let budget_ms = budget_cycles as f64 / (clock_mhz * 1000.0);
    let observed_ms = observed_cycles as f64 / (clock_mhz * 1000.0);
    println!(
        "\npipeline WCET budget: {budget_cycles} cycles = {budget_ms:.2} ms @ {clock_mhz} MHz"
    );
    println!("observed worst case:  {observed_cycles} cycles = {observed_ms:.2} ms");

    // A 40 ms frame period (25 fps) — does the guaranteed budget fit?
    let frame_ms = 40.0;
    println!(
        "fits a {frame_ms} ms frame: {} (guaranteed, not just observed)",
        budget_ms <= frame_ms
    );
    Ok(())
}
