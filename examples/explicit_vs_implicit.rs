//! The paper's core argument, §II: explicit path enumeration "runs out of
//! steam rather quickly" while the ILP formulation considers all paths
//! implicitly.
//!
//! ```text
//! cargo run --example explicit_vs_implicit
//! ```
//!
//! Builds programs with k sequential if-then-else diamonds (2^k paths),
//! walks them explicitly, and solves the same problem as one ILP. Both
//! must agree wherever the explicit walk completes.

use ipet_baseline::{diamond_chain_program, PathEnumerator};
use ipet_cfg::Cfg;
use ipet_core::Analyzer;
use ipet_hw::{block_cost, Machine};
use std::collections::HashMap;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = Machine::i960kb();
    println!("{:<4} {:>12} {:>14} {:>14} {:>8}", "k", "paths", "explicit", "implicit", "agree");
    for k in [2usize, 4, 6, 8, 10, 12, 14, 16] {
        let program = diamond_chain_program(k);
        let cfg = Cfg::build(program.entry, program.entry_function());
        let costs: Vec<_> =
            cfg.blocks.iter().map(|b| block_cost(&machine, program.entry_function(), b)).collect();

        let t0 = Instant::now();
        let enumerator = PathEnumerator::new(&cfg, &costs, &HashMap::new(), u64::MAX)?;
        let explicit = enumerator.enumerate();
        let t_explicit = t0.elapsed();

        let analyzer = Analyzer::new(&program, machine)?;
        let t1 = Instant::now();
        let implicit = analyzer.analyze("")?;
        let t_implicit = t1.elapsed();

        let agree = explicit.worst == Some(implicit.bound.upper)
            && explicit.best == Some(implicit.bound.lower);
        println!(
            "{k:<4} {:>12} {:>11.2?} {:>11.2?} {:>8}",
            explicit.paths_explored, t_explicit, t_implicit, agree
        );
        assert!(agree, "methods must agree on complete walks");
    }
    println!("\nexplicit time doubles with every extra branch; the ILP does not.");
    Ok(())
}
