//! The §IV refinement: treating the first loop iteration as its own
//! virtual block with cold-cache cost, and later iterations with warm
//! costs — "this pessimism can easily be avoided in the path analysis
//! stage by considering the first iteration of the loop as a separate
//! basic block".
//!
//! ```text
//! cargo run --example cache_split
//! ```

use ipet_core::{Analyzer, CacheMode};
use ipet_hw::Machine;
use ipet_sim::measure;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = Machine::i960kb();
    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>10}",
        "function", "all-miss", "split", "measured", "tightened"
    );
    for bench in ipet_suite::all() {
        let program = bench.program()?;
        let annotations = bench.annotations(&program);

        let baseline = Analyzer::new(&program, machine)?;
        let est_all_miss = baseline.analyze(&annotations)?;

        let refined = Analyzer::new(&program, machine)?.with_cache_mode(CacheMode::FirstIterSplit);
        let est_split = refined.analyze(&annotations)?;

        let worst = measure(&program, machine, &(bench.worst_seeds)(), bench.args_worst, true)?;

        // The refinement must tighten, and must stay safe.
        assert!(est_split.bound.upper <= est_all_miss.bound.upper);
        assert!(worst.cycles <= est_split.bound.upper);

        let gain = 100.0 * (est_all_miss.bound.upper - est_split.bound.upper) as f64
            / est_all_miss.bound.upper as f64;
        println!(
            "{:<16} {:>12} {:>12} {:>12} {:>9.1}%",
            bench.name, est_all_miss.bound.upper, est_split.bound.upper, worst.cycles, gain
        );
    }
    println!("\nsplitting never loosens a bound and never undercuts the measurement.");
    Ok(())
}
