//! Offline, minimal stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, implementing exactly the API surface this workspace uses.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This replacement keeps the same names and shapes — `Strategy`,
//! `prop_map` / `prop_flat_map` / `prop_recursive`, `prop::collection::vec`,
//! `prop_oneof!`, `proptest!`, `prop_assert*!` — backed by a deterministic
//! splitmix64 generator. It does **not** implement shrinking: a failing case
//! reports its generated inputs and the case seed instead of a minimised
//! counterexample.

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

pub mod test_runner {
    //! Runner configuration and the deterministic RNG.

    /// Number of cases to run per property (default 256, like proptest).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// How many random cases each property executes.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic splitmix64 generator; each test case gets its own
    /// stream derived from the case index (and `PROPTEST_SEED`, if set).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for one case of one property.
        pub fn for_case(case: u64) -> TestRng {
            let base = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(0x5EED_19E7_u64 ^ 0xA076_1D64_78BD_642F);
            TestRng { state: base.wrapping_add(case.wrapping_mul(0x9E37_79B9_7F4A_7C15)) }
        }

        /// Next raw 64-bit value (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..n` (`n > 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            // Modulo bias is irrelevant for test-input generation.
            self.next_u64() % n.max(1)
        }
    }
}

use test_runner::TestRng;

pub mod strategy {
    //! The `Strategy` trait and its combinators.

    use super::*;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated value type.
        type Value: fmt::Debug;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: fmt::Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates an intermediate value, then generates from the strategy
        /// `f` derives from it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Builds a depth-bounded recursive strategy: at each level, either a
        /// base case (`self`) or whatever `recurse` builds from the previous
        /// level. `_desired_size` and `_expected_branch` are accepted for
        /// proptest compatibility; depth alone bounds recursion here.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let base = self.boxed();
            let mut strat = base.clone();
            for _ in 0..depth {
                strat = Union::new(vec![base.clone(), recurse(strat).boxed()]).boxed();
            }
            strat
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    /// Object-safe generation, used by [`BoxedStrategy`].
    pub trait DynStrategy<T> {
        /// Generates one value.
        fn dyn_generate(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.dyn_generate(rng)
        }
    }

    impl<T> fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + fmt::Debug>(pub T);

    impl<T: Clone + fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between type-erased alternatives (what `prop_oneof!`
    /// builds).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options` (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union { options: self.options.clone() }
        }
    }

    impl<T: fmt::Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: fmt::Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// String-pattern strategies: `"..." ` as a strategy generates arbitrary
    /// strings. Only the degenerate patterns used by the test suite are
    /// honoured — anything is treated as "arbitrary unicode text", which is
    /// what `".*"` asks for.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let len = rng.below(48) as usize;
            let mut s = String::with_capacity(len);
            for _ in 0..len {
                // Mix plain ASCII, whitespace/control, and multi-byte chars.
                let c = match rng.below(8) {
                    0 => char::from(32 + rng.below(95) as u8),
                    1 => ['\n', '\t', '\r', '\0', ';', '#'][rng.below(6) as usize],
                    2 => char::from_u32(0x80 + rng.below(0x700) as u32).unwrap_or('ß'),
                    3 => char::from_u32(0x1F300 + rng.below(0x100) as u32).unwrap_or('🎲'),
                    _ => char::from(32 + rng.below(95) as u8),
                };
                s.push(c);
            }
            s
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::strategy::Strategy;
    use super::TestRng;
    use std::fmt;
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for collection strategies (inclusive).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy for `Vec<T>` with lengths drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy over `element`, with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies (`prop::option::of`).

    use super::strategy::Strategy;
    use super::TestRng;
    use std::fmt;

    /// Strategy for `Option<T>` (`None` roughly a quarter of the time).
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// Wraps `inner`'s values in `Some`, sometimes yielding `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod arbitrary {
    //! The `any::<T>()` entry point for canonical strategies.

    use super::strategy::Strategy;
    use super::TestRng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized + std::fmt::Debug {
        /// The canonical strategy type.
        type Strategy: Strategy<Value = Self>;
        /// Builds the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    /// Uniform `bool`.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.below(2) == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = BoolStrategy;
        fn arbitrary() -> BoolStrategy {
            BoolStrategy
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = std::ops::RangeInclusive<$t>;
                fn arbitrary() -> Self::Strategy {
                    <$t>::MIN..=<$t>::MAX
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod prop {
    //! The `prop::` namespace (`prop::collection`, `prop::option`).
    pub use super::collection;
    pub use super::option;
}

pub mod prelude {
    //! Everything a property test needs: `use proptest::prelude::*;`.
    pub use super::arbitrary::{any, Arbitrary};
    pub use super::prop;
    pub use super::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use super::test_runner::{ProptestConfig, TestRng};
    pub use super::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+)
    };
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let strat = ($($strat,)+);
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(case as u64);
                let value = $crate::strategy::Strategy::generate(&strat, &mut rng);
                let repr = format!("{:?}", &value);
                let run = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    move || {
                        let ($($pat,)+) = value;
                        $body
                    },
                ));
                if let Err(panic) = run {
                    eprintln!(
                        "proptest: case {}/{} of `{}` failed (set PROPTEST_SEED to vary)\n\
                         inputs: {}",
                        case + 1,
                        config.cases,
                        stringify!($name),
                        repr,
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case(7);
        for _ in 0..1000 {
            let v = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&v));
            let w = (1usize..=3).generate(&mut rng);
            assert!((1..=3).contains(&w));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = prop::collection::vec(0u32..100, 0..10);
        let a: Vec<Vec<u32>> = (0..20).map(|c| strat.generate(&mut TestRng::for_case(c))).collect();
        let b: Vec<Vec<u32>> = (0..20).map(|c| strat.generate(&mut TestRng::for_case(c))).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn oneof_and_recursion_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(#[allow(dead_code)] i32),
            Node(Vec<Tree>),
        }
        let leaf = (0i32..10).prop_map(Tree::Leaf);
        let tree = leaf.prop_recursive(3, 16, 2, |inner| {
            prop::collection::vec(inner, 1..3).prop_map(Tree::Node)
        });
        let mut rng = TestRng::for_case(0);
        for _ in 0..200 {
            let t = tree.generate(&mut rng);
            fn depth(t: &Tree) -> usize {
                match t {
                    Tree::Leaf(_) => 0,
                    Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
                }
            }
            assert!(depth(&t) <= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro front end compiles and runs: tuple patterns, assume,
        /// flat_map, option, strings.
        #[test]
        fn macro_front_end((a, b) in (0i32..10, 0i32..10), s in ".*", o in prop::option::of(0u8..4)) {
            prop_assume!(a != 3);
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(s.len(), s.len());
            if let Some(v) = o {
                prop_assert!(v < 4);
            }
        }

        /// flat_map derives dependent strategies.
        #[test]
        fn flat_map_dependent(v in (1usize..5).prop_flat_map(|n| prop::collection::vec(0u8..10, n..n + 1))) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }
    }
}
