//! Offline, minimal stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness,
//! implementing exactly the API surface this workspace's benches use.
//!
//! Instead of statistical sampling it runs each benchmark a small fixed
//! number of iterations and prints the mean wall-clock time — enough to
//! compile, run, and eyeball the benches without network access.

use std::fmt;
use std::time::Instant;

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies a parameterized benchmark (`group.bench_with_input`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id labelled `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { name: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Runs the measured closure; handed to every benchmark body.
pub struct Bencher {
    iters: u64,
    total_nanos: u128,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.total_nanos = start.elapsed().as_nanos();
    }
}

/// The top-level harness handle.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { iters: 10 }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Criterion {
        run_one(name, self.iters, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Compatibility shim: the stand-in runs a fixed iteration count, so the
    /// requested statistical sample size is recorded as the iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.iters = (n as u64).clamp(1, 50);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.criterion.iters, f);
        self
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.criterion.iters, |b| f(b, input));
        self
    }

    /// Ends the group (printing is per-benchmark here, so this is a no-op).
    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, iters: u64, mut f: F) {
    let mut bencher = Bencher { iters, total_nanos: 0 };
    f(&mut bencher);
    let per_iter = bencher.total_nanos / u128::from(iters.max(1));
    println!("bench {label}: {per_iter} ns/iter ({iters} iters)");
}

/// Collects benchmark functions into a runner, like the real macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(10);
        let mut ran = 0u32;
        group.bench_function("inc", |b| b.iter(|| ran = black_box(ran + 1)));
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        assert!(ran > 0);
    }
}
