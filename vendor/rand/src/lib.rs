//! Offline, minimal stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate, implementing exactly the API surface this workspace uses:
//! `StdRng::seed_from_u64`, `Rng::{gen_range, gen_bool}` over integer
//! ranges, and `SliceRandom::shuffle`.
//!
//! The generator is splitmix64 — deterministic for a given seed, which is
//! all the benchmark synthesizer needs (it never depends on matching the
//! real `rand` stream, only on reproducibility).

use std::ops::{Range, RangeInclusive};

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The raw entropy source.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        // 53 bits of mantissa → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (splitmix64 here).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    //! Sequence helpers (`SliceRandom`).

    use super::{Rng, RngCore};

    /// Random slice operations.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

pub mod prelude {
    //! Common imports: `use rand::prelude::*;`.
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..32).map(|_| a.gen_range(0u64..1000)).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.gen_range(0u64..1000)).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn ranges_and_bool_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&v));
            let u = rng.gen_range(1usize..10);
            assert!((1..10).contains(&u));
            let _ = rng.gen_bool(0.25);
        }
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
